package storage

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestKVPutGet(t *testing.T) {
	kv := NewKV()
	if err := kv.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := kv.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestKVGetMissing(t *testing.T) {
	kv := NewKV()
	if _, err := kv.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestKVOverwrite(t *testing.T) {
	kv := NewKV()
	_ = kv.Put([]byte("k"), []byte("old"))
	_ = kv.Put([]byte("k"), []byte("new"))
	v, _ := kv.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatalf("Get = %q", v)
	}
}

func TestKVDelete(t *testing.T) {
	kv := NewKV()
	_ = kv.Put([]byte("k"), []byte("v"))
	_ = kv.Delete([]byte("k"))
	if _, err := kv.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still readable: %v", err)
	}
	if kv.Has([]byte("k")) {
		t.Fatal("Has true after delete")
	}
}

func TestKVEmptyValueIsNotTombstone(t *testing.T) {
	kv := NewKV()
	_ = kv.Put([]byte("k"), []byte{})
	v, err := kv.Get([]byte("k"))
	if err != nil {
		t.Fatalf("empty value read as missing: %v", err)
	}
	if len(v) != 0 {
		t.Fatalf("v = %q", v)
	}
}

func TestKVFlushAndReadFromRuns(t *testing.T) {
	kv := NewKV(WithFlushSize(64))
	for i := 0; i < 100; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	if kv.Runs() == 0 {
		t.Fatal("flush never happened")
	}
	for i := 0; i < 100; i++ {
		v, err := kv.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%03d = %q, %v", i, v, err)
		}
	}
}

func TestKVNewestRunWins(t *testing.T) {
	kv := NewKV(WithFlushSize(32), WithMaxRuns(100)) // avoid compaction
	_ = kv.Put([]byte("k"), []byte("v1"))
	_ = kv.Put([]byte("pad1"), bytes.Repeat([]byte("x"), 64)) // force flush
	_ = kv.Put([]byte("k"), []byte("v2"))
	_ = kv.Put([]byte("pad2"), bytes.Repeat([]byte("x"), 64)) // force flush
	if kv.Runs() < 2 {
		t.Fatalf("runs = %d, want >= 2", kv.Runs())
	}
	v, err := kv.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q, %v (older run shadowed newer)", v, err)
	}
}

func TestKVDeleteAcrossFlush(t *testing.T) {
	kv := NewKV(WithFlushSize(16), WithMaxRuns(100))
	_ = kv.Put([]byte("k"), []byte("v"))
	_ = kv.Put([]byte("pad"), bytes.Repeat([]byte("x"), 32))
	_ = kv.Delete([]byte("k"))
	_ = kv.Put([]byte("pad2"), bytes.Repeat([]byte("x"), 32))
	if _, err := kv.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone in newer run did not shadow older value")
	}
}

func TestKVCompaction(t *testing.T) {
	kv := NewKV(WithFlushSize(64), WithMaxRuns(2))
	for i := 0; i < 500; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("key-%03d", i%50)), []byte(fmt.Sprintf("v%d", i)))
	}
	kv.Flush()
	if kv.Runs() > 1 {
		t.Fatalf("after Flush runs = %d, want 1", kv.Runs())
	}
	if got := kv.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50 live keys", got)
	}
	// Last write wins after compaction.
	v, _ := kv.Get([]byte("key-049"))
	if string(v) != "v499" {
		t.Fatalf("key-049 = %q, want v499", v)
	}
}

func TestKVCompactionDropsTombstones(t *testing.T) {
	kv := NewKV()
	_ = kv.Put([]byte("a"), []byte("1"))
	_ = kv.Delete([]byte("a"))
	kv.Flush()
	if got := kv.Len(); got != 0 {
		t.Fatalf("Len = %d after delete+compact", got)
	}
}

func TestKVRange(t *testing.T) {
	kv := NewKV(WithFlushSize(32))
	for _, k := range []string{"apple", "banana", "cherry", "date", "elder"} {
		_ = kv.Put([]byte(k), []byte("v-"+k))
	}
	_ = kv.Delete([]byte("cherry"))
	var got []string
	kv.Range([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "banana" || got[1] != "date" {
		t.Fatalf("Range = %v, want [banana date]", got)
	}
}

func TestKVRangeFullAndEarlyStop(t *testing.T) {
	kv := NewKV()
	for i := 0; i < 10; i++ {
		_ = kv.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	count := 0
	kv.Range(nil, nil, func(k, v []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestKVValueIsolation(t *testing.T) {
	kv := NewKV()
	val := []byte("orig")
	_ = kv.Put([]byte("k"), val)
	val[0] = 'X'
	got, _ := kv.Get([]byte("k"))
	if string(got) != "orig" {
		t.Fatal("Put aliased caller buffer")
	}
	got[0] = 'Y'
	got2, _ := kv.Get([]byte("k"))
	if string(got2) != "orig" {
		t.Fatal("Get returned aliasing buffer")
	}
}

func TestKVPropertyModelEquivalence(t *testing.T) {
	// The store must behave exactly like a map under any sequence of
	// put/delete, even with tiny flush thresholds forcing many runs.
	type op struct {
		Del bool
		Key uint8
		Val uint16
	}
	if err := quick.Check(func(ops []op) bool {
		kv := NewKV(WithFlushSize(48), WithMaxRuns(3))
		model := make(map[string]string)
		for _, o := range ops {
			k := []byte{byte('a' + o.Key%16)}
			if o.Del {
				_ = kv.Delete(k)
				delete(model, string(k))
			} else {
				v := []byte(fmt.Sprintf("v%d", o.Val))
				_ = kv.Put(k, v)
				model[string(k)] = string(v)
			}
		}
		for k, want := range model {
			got, err := kv.Get([]byte(k))
			if err != nil || string(got) != want {
				return false
			}
		}
		return kv.Len() == len(model)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKVConcurrentAccess(t *testing.T) {
	kv := NewKV(WithFlushSize(256))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", w, i))
				_ = kv.Put(k, []byte("v"))
				if _, err := kv.Get(k); err != nil {
					t.Errorf("read own write failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := kv.Len(); got != 800 {
		t.Fatalf("Len = %d, want 800", got)
	}
}

func TestKVWALRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.wal")

	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	kv := NewKV(WithWAL(w))
	_ = kv.Put([]byte("persist"), []byte("yes"))
	_ = kv.Put([]byte("gone"), []byte("tmp"))
	_ = kv.Delete([]byte("gone"))
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := RecoverKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	v, err := kv2.Get([]byte("persist"))
	if err != nil || string(v) != "yes" {
		t.Fatalf("recovered Get = %q, %v", v, err)
	}
	if _, err := kv2.Get([]byte("gone")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected by recovery")
	}
	// New writes after recovery append to the same log.
	_ = kv2.Put([]byte("second"), []byte("gen"))
	_ = kv2.Close()
	kv3, err := RecoverKV(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv3.Close()
	if v, err := kv3.Get([]byte("second")); err != nil || string(v) != "gen" {
		t.Fatalf("second-generation Get = %q, %v", v, err)
	}
}
