package storage

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"
)

// Time-series errors.
var (
	ErrNoSeries     = errors.New("storage: series does not exist")
	ErrBadTimeRange = errors.New("storage: query start must not be after end")
)

// Point is one sample in a series.
type Point struct {
	Time  time.Time
	Value float64
}

// series holds samples in append order; queries sort-merge as needed.
// Samples usually arrive in time order, so we track whether a sort is
// pending instead of sorting per append.
type series struct {
	mu       sync.Mutex
	points   []Point
	unsorted bool
	maxAge   time.Duration
}

func (s *series) append(p Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.points); n > 0 && p.Time.Before(s.points[n-1].Time) {
		s.unsorted = true
	}
	s.points = append(s.points, p)
}

// prune drops points older than maxAge relative to now.
func (s *series) prune(now time.Time) {
	if s.maxAge <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	horizon := now.Add(-s.maxAge)
	i := sort.Search(len(s.points), func(i int) bool {
		return !s.points[i].Time.Before(horizon)
	})
	if i > 0 {
		s.points = append([]Point(nil), s.points[i:]...)
	}
}

func (s *series) sortLocked() {
	if !s.unsorted {
		return
	}
	sort.SliceStable(s.points, func(i, j int) bool {
		return s.points[i].Time.Before(s.points[j].Time)
	})
	s.unsorted = false
}

// query returns points in [start, end] in time order.
func (s *series) query(start, end time.Time) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	lo := sort.Search(len(s.points), func(i int) bool {
		return !s.points[i].Time.Before(start)
	})
	hi := sort.Search(len(s.points), func(i int) bool {
		return s.points[i].Time.After(end)
	})
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

func (s *series) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// TSDB is a simple in-memory time-series store keyed by series name. It
// supports range queries, latest-value lookup, aggregation, and bucketed
// downsampling — the operations AR overlays need against sensor histories
// (vitals, traffic counts, building telemetry).
type TSDB struct {
	mu     sync.RWMutex
	series map[string]*series
	maxAge time.Duration
}

// TSDBOption configures a TSDB.
type TSDBOption func(*TSDB)

// WithRetention discards points older than d on Prune (default: keep all).
func WithRetention(d time.Duration) TSDBOption {
	return func(db *TSDB) { db.maxAge = d }
}

// NewTSDB returns an empty store.
func NewTSDB(opts ...TSDBOption) *TSDB {
	db := &TSDB{series: make(map[string]*series)}
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// Append adds a sample to the named series, creating the series on first
// write.
func (db *TSDB) Append(name string, p Point) {
	db.mu.Lock()
	s, ok := db.series[name]
	if !ok {
		s = &series{maxAge: db.maxAge}
		db.series[name] = s
	}
	db.mu.Unlock()
	s.append(p)
}

func (db *TSDB) get(name string) (*series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.series[name]
	if !ok {
		return nil, ErrNoSeries
	}
	return s, nil
}

// Query returns all points of the series in [start, end] in time order.
func (db *TSDB) Query(name string, start, end time.Time) ([]Point, error) {
	if start.After(end) {
		return nil, ErrBadTimeRange
	}
	s, err := db.get(name)
	if err != nil {
		return nil, err
	}
	return s.query(start, end), nil
}

// Latest returns the most recent point of the series.
func (db *TSDB) Latest(name string) (Point, error) {
	s, err := db.get(name)
	if err != nil {
		return Point{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sortLocked()
	if len(s.points) == 0 {
		return Point{}, ErrNoSeries
	}
	return s.points[len(s.points)-1], nil
}

// SeriesNames returns the sorted names of all series.
func (db *TSDB) SeriesNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.series))
	for n := range db.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumPoints returns the total number of stored points in the named series
// (0 for unknown series).
func (db *TSDB) NumPoints(name string) int {
	s, err := db.get(name)
	if err != nil {
		return 0
	}
	return s.len()
}

// Prune applies retention to every series relative to now.
func (db *TSDB) Prune(now time.Time) {
	db.mu.RLock()
	all := make([]*series, 0, len(db.series))
	for _, s := range db.series {
		all = append(all, s)
	}
	db.mu.RUnlock()
	for _, s := range all {
		s.prune(now)
	}
}

// AggKind selects an aggregation function. Enums start at 1.
type AggKind int

// Aggregations supported by Aggregate and Downsample.
const (
	AggMean AggKind = iota + 1
	AggMin
	AggMax
	AggSum
	AggCount
)

// Aggregate reduces the series over [start, end] with the given function.
// It returns 0 and no error for an empty range with AggCount/AggSum, and
// ErrNoSeries if the series does not exist.
func (db *TSDB) Aggregate(name string, start, end time.Time, kind AggKind) (float64, error) {
	pts, err := db.Query(name, start, end)
	if err != nil {
		return 0, err
	}
	return aggregate(pts, kind), nil
}

func aggregate(pts []Point, kind AggKind) float64 {
	if len(pts) == 0 {
		if kind == AggCount || kind == AggSum {
			return 0
		}
		return math.NaN()
	}
	switch kind {
	case AggCount:
		return float64(len(pts))
	case AggSum, AggMean:
		var sum float64
		for _, p := range pts {
			sum += p.Value
		}
		if kind == AggSum {
			return sum
		}
		return sum / float64(len(pts))
	case AggMin:
		m := pts[0].Value
		for _, p := range pts[1:] {
			if p.Value < m {
				m = p.Value
			}
		}
		return m
	case AggMax:
		m := pts[0].Value
		for _, p := range pts[1:] {
			if p.Value > m {
				m = p.Value
			}
		}
		return m
	default:
		return math.NaN()
	}
}

// Bucket is one downsampled interval.
type Bucket struct {
	Start time.Time
	Value float64
	Count int
}

// Downsample reduces the series over [start, end] into fixed-width buckets.
// Empty buckets are omitted.
func (db *TSDB) Downsample(name string, start, end time.Time, width time.Duration, kind AggKind) ([]Bucket, error) {
	if width <= 0 {
		return nil, errors.New("storage: bucket width must be positive")
	}
	pts, err := db.Query(name, start, end)
	if err != nil {
		return nil, err
	}
	var out []Bucket
	var cur []Point
	var curStart time.Time
	flush := func() {
		if len(cur) == 0 {
			return
		}
		out = append(out, Bucket{Start: curStart, Value: aggregate(cur, kind), Count: len(cur)})
		cur = cur[:0]
	}
	for _, p := range pts {
		bs := start.Add(p.Time.Sub(start).Truncate(width))
		if len(cur) > 0 && !bs.Equal(curStart) {
			flush()
		}
		curStart = bs
		cur = append(cur, p)
	}
	flush()
	return out, nil
}
