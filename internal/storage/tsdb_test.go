package storage

import (
	"errors"
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC)

func fill(db *TSDB, name string, n int, step time.Duration, f func(i int) float64) {
	for i := 0; i < n; i++ {
		db.Append(name, Point{Time: t0.Add(time.Duration(i) * step), Value: f(i)})
	}
}

func TestTSDBQueryRange(t *testing.T) {
	db := NewTSDB()
	fill(db, "hr", 10, time.Second, func(i int) float64 { return float64(60 + i) })
	pts, err := db.Query("hr", t0.Add(2*time.Second), t0.Add(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 { // inclusive bounds: 2,3,4,5
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if pts[0].Value != 62 || pts[3].Value != 65 {
		t.Fatalf("edge values %v, %v", pts[0].Value, pts[3].Value)
	}
}

func TestTSDBQueryUnknownSeries(t *testing.T) {
	db := NewTSDB()
	if _, err := db.Query("nope", t0, t0.Add(time.Hour)); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v, want ErrNoSeries", err)
	}
}

func TestTSDBQueryBadRange(t *testing.T) {
	db := NewTSDB()
	db.Append("s", Point{Time: t0, Value: 1})
	if _, err := db.Query("s", t0.Add(time.Hour), t0); !errors.Is(err, ErrBadTimeRange) {
		t.Fatalf("err = %v, want ErrBadTimeRange", err)
	}
}

func TestTSDBOutOfOrderAppends(t *testing.T) {
	db := NewTSDB()
	db.Append("s", Point{Time: t0.Add(3 * time.Second), Value: 3})
	db.Append("s", Point{Time: t0.Add(1 * time.Second), Value: 1})
	db.Append("s", Point{Time: t0.Add(2 * time.Second), Value: 2})
	pts, err := db.Query("s", t0, t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0].Value != 1 || pts[1].Value != 2 || pts[2].Value != 3 {
		t.Fatalf("points not time-ordered: %v", pts)
	}
}

func TestTSDBLatest(t *testing.T) {
	db := NewTSDB()
	if _, err := db.Latest("s"); !errors.Is(err, ErrNoSeries) {
		t.Fatalf("err = %v", err)
	}
	fill(db, "s", 5, time.Second, func(i int) float64 { return float64(i) })
	p, err := db.Latest("s")
	if err != nil || p.Value != 4 {
		t.Fatalf("Latest = %v, %v", p, err)
	}
}

func TestTSDBAggregates(t *testing.T) {
	db := NewTSDB()
	fill(db, "s", 4, time.Second, func(i int) float64 { return float64(i + 1) }) // 1,2,3,4
	end := t0.Add(time.Minute)
	cases := []struct {
		kind AggKind
		want float64
	}{
		{AggMean, 2.5},
		{AggMin, 1},
		{AggMax, 4},
		{AggSum, 10},
		{AggCount, 4},
	}
	for _, c := range cases {
		got, err := db.Aggregate("s", t0, end, c.kind)
		if err != nil || got != c.want {
			t.Errorf("Aggregate(%v) = %v, %v; want %v", c.kind, got, err, c.want)
		}
	}
}

func TestTSDBAggregateEmptyRange(t *testing.T) {
	db := NewTSDB()
	db.Append("s", Point{Time: t0, Value: 1})
	after := t0.Add(time.Hour)
	if got, err := db.Aggregate("s", after, after.Add(time.Second), AggCount); err != nil || got != 0 {
		t.Fatalf("empty count = %v, %v", got, err)
	}
	got, err := db.Aggregate("s", after, after.Add(time.Second), AggMean)
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("empty mean = %v, %v; want NaN", got, err)
	}
}

func TestTSDBDownsample(t *testing.T) {
	db := NewTSDB()
	// 60 points at 1s spacing; 10s buckets of means.
	fill(db, "s", 60, time.Second, func(i int) float64 { return float64(i) })
	buckets, err := db.Downsample("s", t0, t0.Add(time.Minute), 10*time.Second, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 6 {
		t.Fatalf("got %d buckets, want 6", len(buckets))
	}
	if buckets[0].Value != 4.5 { // mean of 0..9
		t.Fatalf("bucket 0 mean = %v, want 4.5", buckets[0].Value)
	}
	if buckets[0].Count != 10 {
		t.Fatalf("bucket 0 count = %d", buckets[0].Count)
	}
	if !buckets[1].Start.Equal(t0.Add(10 * time.Second)) {
		t.Fatalf("bucket 1 start = %v", buckets[1].Start)
	}
}

func TestTSDBDownsampleSkipsEmptyBuckets(t *testing.T) {
	db := NewTSDB()
	db.Append("s", Point{Time: t0, Value: 1})
	db.Append("s", Point{Time: t0.Add(35 * time.Second), Value: 2})
	buckets, err := db.Downsample("s", t0, t0.Add(time.Minute), 10*time.Second, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (gaps omitted)", len(buckets))
	}
}

func TestTSDBDownsampleBadWidth(t *testing.T) {
	db := NewTSDB()
	db.Append("s", Point{Time: t0, Value: 1})
	if _, err := db.Downsample("s", t0, t0.Add(time.Minute), 0, AggMean); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestTSDBRetentionPrune(t *testing.T) {
	db := NewTSDB(WithRetention(30 * time.Second))
	fill(db, "s", 60, time.Second, func(i int) float64 { return float64(i) })
	now := t0.Add(60 * time.Second)
	db.Prune(now)
	if got := db.NumPoints("s"); got != 30 {
		t.Fatalf("after prune NumPoints = %d, want 30", got)
	}
	pts, _ := db.Query("s", t0, now)
	if pts[0].Time.Before(now.Add(-30 * time.Second)) {
		t.Fatalf("prune left old point at %v", pts[0].Time)
	}
}

func TestTSDBSeriesNames(t *testing.T) {
	db := NewTSDB()
	db.Append("zeta", Point{Time: t0, Value: 1})
	db.Append("alpha", Point{Time: t0, Value: 1})
	names := db.SeriesNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	if db.NumPoints("missing") != 0 {
		t.Fatal("NumPoints of missing series not 0")
	}
}
