package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestWALAppendReplay(t *testing.T) {
	path := walPath(t)
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []WALRecord{
		{Op: OpPut, Key: []byte("a"), Value: []byte("1")},
		{Op: OpPut, Key: []byte("b"), Value: []byte("2")},
		{Op: OpDelete, Key: []byte("a")},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []WALRecord
	if err := ReplayWAL(path, func(r WALRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d, want 3", len(got))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || string(got[i].Key) != string(recs[i].Key) ||
			string(got[i].Value) != string(recs[i].Value) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWALReplayMissingFileIsEmpty(t *testing.T) {
	if err := ReplayWAL(filepath.Join(t.TempDir(), "absent.wal"), func(WALRecord) error {
		t.Fatal("callback on missing file")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path)
	_ = w.Append(WALRecord{Op: OpPut, Key: []byte("ok"), Value: []byte("v")})
	_ = w.Append(WALRecord{Op: OpPut, Key: []byte("torn"), Value: []byte("half-written")})
	_ = w.Close()

	// Truncate mid-way through the second record to simulate a crash.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := ReplayWAL(path, func(r WALRecord) error {
		keys = append(keys, string(r.Key))
		return nil
	}); err != nil {
		t.Fatalf("torn tail returned error: %v", err)
	}
	if len(keys) != 1 || keys[0] != "ok" {
		t.Fatalf("replayed %v, want [ok]", keys)
	}
}

func TestWALMidFileCorruptionDetected(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path)
	_ = w.Append(WALRecord{Op: OpPut, Key: []byte("first"), Value: []byte("v1")})
	_ = w.Append(WALRecord{Op: OpPut, Key: []byte("second"), Value: []byte("v2")})
	_ = w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF // corrupt first record body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ReplayWAL(path, func(WALRecord) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
}

func TestWALAppendAfterClose(t *testing.T) {
	w, _ := OpenWAL(walPath(t))
	_ = w.Close()
	if err := w.Append(WALRecord{Op: OpPut, Key: []byte("k")}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("err = %v, want ErrWALClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("Sync err = %v, want ErrWALClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWALReplayCallbackError(t *testing.T) {
	path := walPath(t)
	w, _ := OpenWAL(path)
	_ = w.Append(WALRecord{Op: OpPut, Key: []byte("k"), Value: []byte("v")})
	_ = w.Close()
	sentinel := errors.New("stop")
	if err := ReplayWAL(path, func(WALRecord) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
