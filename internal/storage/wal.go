// Package storage provides the platform's durable state substrates: a
// write-ahead log, a log-structured key-value store (memtable + sorted
// immutable runs with compaction), and a time-series store with
// downsampling. These stand in for the database tier of the paper's big-data
// backend (POI catalogues, EHR documents, consumer profiles, sensor
// histories).
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// WAL errors.
var (
	ErrWALCorrupt = errors.New("storage: wal record corrupt")
	ErrWALClosed  = errors.New("storage: wal closed")
)

// OpType tags a WAL record. Enums start at 1.
type OpType uint8

// WAL operation types.
const (
	OpPut OpType = iota + 1
	OpDelete
)

// WALRecord is one logged mutation.
type WALRecord struct {
	Op    OpType
	Key   []byte
	Value []byte
}

var walTable = crc32.MakeTable(crc32.Castagnoli)

// WAL is an append-only write-ahead log over an os.File (or any
// io.ReadWriteSeeker-ish pair via OpenWALFile). Records survive process
// restarts; Replay rebuilds state. Safe for concurrent Append.
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	buf    []byte
	closed bool
	count  int64
}

// OpenWAL opens (creating if absent) the WAL at path for appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening wal: %w", err)
	}
	return &WAL{f: f}, nil
}

// Append durably logs one record.
// Layout: u32 len | u32 crc | op(1) | klen uvarint | key | vlen uvarint | val.
func (w *WAL) Append(rec WALRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	w.buf = w.buf[:0]
	w.buf = append(w.buf, byte(rec.Op))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rec.Key)))
	w.buf = append(w.buf, rec.Key...)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(rec.Value)))
	w.buf = append(w.buf, rec.Value...)

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(w.buf)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(w.buf, walTable))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: wal header: %w", err)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("storage: wal body: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of records appended through this handle.
func (w *WAL) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Sync flushes the log to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWALClosed
	}
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayWAL reads every intact record at path, calling fn for each in order.
// A truncated or corrupt tail terminates replay without error (the standard
// torn-write recovery contract); corruption before the tail returns
// ErrWALCorrupt.
func ReplayWAL(path string, fn func(WALRecord) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: opening wal for replay: %w", err)
	}
	defer f.Close()

	var hdr [8]byte
	body := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // clean or torn tail
			}
			return fmt.Errorf("storage: wal replay header: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 64<<20 {
			return fmt.Errorf("%w: implausible record size %d", ErrWALCorrupt, n)
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(f, body); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn tail
			}
			return fmt.Errorf("storage: wal replay body: %w", err)
		}
		if crc32.Checksum(body, walTable) != sum {
			// A bad checksum mid-file is real corruption; at the tail it is a
			// torn write. We cannot distinguish without scanning ahead, so we
			// check whether anything follows.
			var probe [1]byte
			if _, err := f.Read(probe[:]); err == io.EOF {
				return nil
			}
			return ErrWALCorrupt
		}
		rec, err := decodeWALBody(body)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func decodeWALBody(body []byte) (WALRecord, error) {
	if len(body) < 1 {
		return WALRecord{}, ErrWALCorrupt
	}
	rec := WALRecord{Op: OpType(body[0])}
	if rec.Op != OpPut && rec.Op != OpDelete {
		return WALRecord{}, fmt.Errorf("%w: bad op %d", ErrWALCorrupt, body[0])
	}
	rest := body[1:]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return WALRecord{}, ErrWALCorrupt
	}
	rest = rest[n:]
	rec.Key = append([]byte(nil), rest[:klen]...)
	rest = rest[klen:]
	vlen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < vlen {
		return WALRecord{}, ErrWALCorrupt
	}
	rest = rest[n:]
	rec.Value = append([]byte(nil), rest[:vlen]...)
	return rec, nil
}
