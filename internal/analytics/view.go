package analytics

import (
	"sort"
	"sync"
)

// Row is one input record for materialized views: a group key and a numeric
// measure (e.g. product -> spend, POI -> dwell seconds).
type Row struct {
	Group string
	Value float64
}

// GroupStats is the aggregate a view maintains per group.
type GroupStats struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 when empty).
func (g GroupStats) Mean() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.Sum / float64(g.Count)
}

// View maintains per-group aggregates incrementally: Apply folds one new row
// in O(1), which is the paper's §4.1 answer to analysis latency — partial
// results updated as data arrives rather than recomputed from scratch. The
// zero value is not ready; use NewView. Safe for concurrent use.
type View struct {
	mu     sync.RWMutex
	groups map[string]*GroupStats
	rows   int64
}

// NewView returns an empty view.
func NewView() *View {
	return &View{groups: make(map[string]*GroupStats)}
}

// Apply folds one row into the view.
func (v *View) Apply(r Row) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.applyLocked(r)
}

func (v *View) applyLocked(r Row) {
	g, ok := v.groups[r.Group]
	if !ok {
		g = &GroupStats{Min: r.Value, Max: r.Value}
		v.groups[r.Group] = g
	}
	g.Count++
	g.Sum += r.Value
	if r.Value < g.Min {
		g.Min = r.Value
	}
	if r.Value > g.Max {
		g.Max = r.Value
	}
	v.rows++
}

// ApplyBatch folds many rows under one lock acquisition.
func (v *View) ApplyBatch(rows []Row) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range rows {
		v.applyLocked(r)
	}
}

// Get returns the stats for a group and whether it exists.
func (v *View) Get(group string) (GroupStats, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	g, ok := v.groups[group]
	if !ok {
		return GroupStats{}, false
	}
	return *g, true
}

// GetKey is Get for a byte-slice key. The compiler elides the string
// conversion for map lookups, so hot paths that render group keys into a
// reusable byte buffer query the view without allocating.
func (v *View) GetKey(group []byte) (GroupStats, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	g, ok := v.groups[string(group)]
	if !ok {
		return GroupStats{}, false
	}
	return *g, true
}

// Rows returns the number of rows folded in.
func (v *View) Rows() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.rows
}

// Groups returns the number of distinct groups.
func (v *View) Groups() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.groups)
}

// TopBySum returns up to k groups ordered by Sum descending (ties by name).
func (v *View) TopBySum(k int) []struct {
	Group string
	Stats GroupStats
} {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]struct {
		Group string
		Stats GroupStats
	}, 0, len(v.groups))
	for name, g := range v.groups {
		out = append(out, struct {
			Group string
			Stats GroupStats
		}{name, *g})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stats.Sum != out[j].Stats.Sum {
			return out[i].Stats.Sum > out[j].Stats.Sum
		}
		return out[i].Group < out[j].Group
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// BatchCompute builds a fresh view from the complete row log — the
// recompute-from-scratch baseline of experiment E3. Its cost grows with the
// log while Apply stays O(1).
func BatchCompute(rows []Row) *View {
	v := NewView()
	for _, r := range rows {
		v.applyLocked(r) // single-threaded build: lock not needed but harmless to skip
	}
	return v
}

// Equal reports whether two views hold identical aggregates; used by tests
// and the E3 harness to check incremental == batch.
func (v *View) Equal(o *View) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(v.groups) != len(o.groups) || v.rows != o.rows {
		return false
	}
	for name, g := range v.groups {
		og, ok := o.groups[name]
		if !ok || *g != *og {
			return false
		}
	}
	return true
}
