package analytics

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"arbd/internal/sim"
)

func genRows(seed int64, n, groups int) []Row {
	rng := sim.NewRand(seed)
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Group: fmt.Sprintf("g%d", rng.Intn(groups)),
			Value: rng.Uniform(0, 100),
		}
	}
	return rows
}

func TestViewBasicAggregates(t *testing.T) {
	v := NewView()
	v.Apply(Row{Group: "a", Value: 10})
	v.Apply(Row{Group: "a", Value: 20})
	v.Apply(Row{Group: "b", Value: 5})
	g, ok := v.Get("a")
	if !ok {
		t.Fatal("group a missing")
	}
	if g.Count != 2 || g.Sum != 30 || g.Min != 10 || g.Max != 20 || g.Mean() != 15 {
		t.Fatalf("stats = %+v", g)
	}
	if _, ok := v.Get("missing"); ok {
		t.Fatal("phantom group")
	}
	if v.Rows() != 3 || v.Groups() != 2 {
		t.Fatalf("rows=%d groups=%d", v.Rows(), v.Groups())
	}
}

func TestIncrementalEqualsBatch(t *testing.T) {
	rows := genRows(5, 5000, 40)
	inc := NewView()
	for _, r := range rows {
		inc.Apply(r)
	}
	batch := BatchCompute(rows)
	if !inc.Equal(batch) {
		t.Fatal("incremental view diverged from batch recompute")
	}
}

func TestIncrementalEqualsBatchProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, nRaw, gRaw uint8) bool {
		n := int(nRaw)%400 + 1
		g := int(gRaw)%10 + 1
		rows := genRows(seed, n, g)
		inc := NewView()
		// Apply in two chunks to exercise ApplyBatch too.
		half := len(rows) / 2
		for _, r := range rows[:half] {
			inc.Apply(r)
		}
		inc.ApplyBatch(rows[half:])
		return inc.Equal(BatchCompute(rows))
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestViewTopBySum(t *testing.T) {
	v := NewView()
	v.Apply(Row{Group: "small", Value: 1})
	v.Apply(Row{Group: "big", Value: 100})
	v.Apply(Row{Group: "mid", Value: 50})
	top := v.TopBySum(2)
	if len(top) != 2 || top[0].Group != "big" || top[1].Group != "mid" {
		t.Fatalf("top = %v", top)
	}
}

func TestViewTopBySumTieOrder(t *testing.T) {
	v := NewView()
	v.Apply(Row{Group: "zeta", Value: 10})
	v.Apply(Row{Group: "alpha", Value: 10})
	top := v.TopBySum(2)
	if top[0].Group != "alpha" {
		t.Fatalf("tie order = %v", top)
	}
}

func TestViewConcurrentApply(t *testing.T) {
	v := NewView()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.Apply(Row{Group: fmt.Sprintf("g%d", i%10), Value: 1})
			}
		}(w)
	}
	wg.Wait()
	if v.Rows() != 4000 {
		t.Fatalf("rows = %d", v.Rows())
	}
	var total float64
	for _, g := range v.TopBySum(100) {
		total += g.Stats.Sum
	}
	if total != 4000 {
		t.Fatalf("sum of sums = %v", total)
	}
}

func TestViewEqualDetectsDifferences(t *testing.T) {
	a, b := NewView(), NewView()
	a.Apply(Row{Group: "g", Value: 1})
	if a.Equal(b) {
		t.Fatal("different views equal")
	}
	b.Apply(Row{Group: "g", Value: 2})
	if a.Equal(b) {
		t.Fatal("different sums equal")
	}
}
