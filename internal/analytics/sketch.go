// Package analytics implements the approximate and incremental analytics the
// paper's timeliness argument (§4.1) depends on: frequency and cardinality
// sketches that answer volume-scale questions in constant memory, heavy-
// hitter tracking, reservoir sampling, and incrementally-maintained
// materialized views compared against full batch recomputation.
package analytics

import (
	"hash/fnv"
	"math"
	"sort"

	"arbd/internal/sim"
)

// hash64 hashes s with FNV-1a and then applies a murmur3-style finalizer.
// Raw FNV leaves the high bits of short, similar keys nearly constant, which
// would collapse HLL register indexes and count-min rows; the finalizer
// restores avalanche across all 64 bits.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// CountMin is a count-min sketch: a fixed-size frequency table whose point
// queries overestimate by at most εN with probability 1-δ.
type CountMin struct {
	width  int
	depth  int
	counts [][]uint64
	total  uint64
}

// NewCountMin returns a sketch with the given error bound ε and failure
// probability δ (both in (0,1)).
func NewCountMin(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.001
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.01
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	cm := &CountMin{width: width, depth: depth}
	cm.counts = make([][]uint64, depth)
	for i := range cm.counts {
		cm.counts[i] = make([]uint64, width)
	}
	return cm
}

// rowHash derives the i-th row hash from two independent halves of one
// 64-bit hash (Kirsch–Mitzenmacher double hashing).
func (cm *CountMin) rowHash(h uint64, row int) int {
	h1 := uint32(h)
	h2 := uint32(h >> 32)
	return int((h1 + uint32(row)*h2) % uint32(cm.width))
}

// Add increments key's count by n.
func (cm *CountMin) Add(key string, n uint64) {
	h := hash64(key)
	for r := 0; r < cm.depth; r++ {
		cm.counts[r][cm.rowHash(h, r)] += n
	}
	cm.total += n
}

// Count returns the (over-)estimated count for key.
func (cm *CountMin) Count(key string) uint64 {
	h := hash64(key)
	min := uint64(math.MaxUint64)
	for r := 0; r < cm.depth; r++ {
		if c := cm.counts[r][cm.rowHash(h, r)]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the number of increments added.
func (cm *CountMin) Total() uint64 { return cm.total }

// MemoryBytes returns the sketch's table size in bytes.
func (cm *CountMin) MemoryBytes() int { return cm.width * cm.depth * 8 }

// HyperLogLog estimates set cardinality in fixed memory with ~1.04/√m
// relative standard error.
type HyperLogLog struct {
	precision uint8 // number of index bits (4..16)
	registers []uint8
}

// NewHyperLogLog returns an HLL with 2^precision registers.
func NewHyperLogLog(precision uint8) *HyperLogLog {
	if precision < 4 {
		precision = 4
	}
	if precision > 16 {
		precision = 16
	}
	return &HyperLogLog{precision: precision, registers: make([]uint8, 1<<precision)}
}

// Add observes key.
func (h *HyperLogLog) Add(key string) {
	x := hash64(key)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // guarantee termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the estimated number of distinct keys added.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Small-range correction (linear counting).
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into h. Both must have equal precision; Merge reports
// whether it applied.
func (h *HyperLogLog) Merge(other *HyperLogLog) bool {
	if h.precision != other.precision {
		return false
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return true
}

// MemoryBytes returns the register array size.
func (h *HyperLogLog) MemoryBytes() int { return len(h.registers) }

// SpaceSaving tracks the k heaviest keys of a stream (Metwally et al.): any
// key with true frequency > N/k is guaranteed to be present.
type SpaceSaving struct {
	capacity int
	counts   map[string]*ssEntry
	total    uint64
}

type ssEntry struct {
	count uint64
	err   uint64 // overestimation bound inherited on eviction
}

// NewSpaceSaving returns a tracker with the given capacity (number of
// monitored keys).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{capacity: capacity, counts: make(map[string]*ssEntry, capacity)}
}

// Add observes key.
func (ss *SpaceSaving) Add(key string) {
	ss.total++
	if e, ok := ss.counts[key]; ok {
		e.count++
		return
	}
	if len(ss.counts) < ss.capacity {
		ss.counts[key] = &ssEntry{count: 1}
		return
	}
	// Evict the minimum and inherit its count as error bound.
	var minKey string
	var minEntry *ssEntry
	for k, e := range ss.counts {
		if minEntry == nil || e.count < minEntry.count {
			minKey, minEntry = k, e
		}
	}
	delete(ss.counts, minKey)
	ss.counts[key] = &ssEntry{count: minEntry.count + 1, err: minEntry.count}
}

// HeavyHitter is one tracked key with its estimated count and error bound.
type HeavyHitter struct {
	Key   string
	Count uint64 // estimate, true count in [Count-Err, Count]
	Err   uint64
}

// TopK returns up to k tracked keys sorted by estimated count descending
// (ties by key for determinism).
func (ss *SpaceSaving) TopK(k int) []HeavyHitter {
	return ss.TopKInto(make([]HeavyHitter, 0, len(ss.counts)), k)
}

// TopKInto is TopK appending into dst (overwriting its contents), so a
// caller snapshotting the sketch every frame can reuse one slice. It sorts
// by insertion rather than sort.Slice: the monitored set is small (the
// sketch capacity, ~64) and the closure-free sort keeps the snapshot
// allocation-free once dst has warmed to capacity.
func (ss *SpaceSaving) TopKInto(dst []HeavyHitter, k int) []HeavyHitter {
	out := dst[:0]
	for key, e := range ss.counts {
		out = append(out, HeavyHitter{Key: key, Count: e.count, Err: e.err})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && heavierHitter(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// heavierHitter orders heavy hitters by estimated count descending, ties by
// key ascending for determinism.
func heavierHitter(a, b HeavyHitter) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Key < b.Key
}

// Total returns the number of observations.
func (ss *SpaceSaving) Total() uint64 { return ss.total }

// Reservoir maintains a uniform random sample of fixed size over an
// unbounded stream (algorithm R).
type Reservoir struct {
	capacity int
	seen     int64
	items    []float64
	rng      *sim.Rand
}

// NewReservoir returns a reservoir of the given capacity, seeded for
// reproducibility.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		capacity = 1
	}
	return &Reservoir{capacity: capacity, rng: sim.NewRand(seed)}
}

// Add observes v.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.items) < r.capacity {
		r.items = append(r.items, v)
		return
	}
	if j := r.rng.Int63() % r.seen; j < int64(r.capacity) {
		r.items[j] = v
	}
}

// Seen returns the number of observations.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	return append([]float64(nil), r.items...)
}

// Quantile estimates the q-th quantile (q in [0,1]) from the sample. It
// returns NaN when the reservoir is empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.items) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), r.items...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := q * float64(len(s)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
