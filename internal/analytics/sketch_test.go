package analytics

import (
	"fmt"
	"math"
	"testing"

	"arbd/internal/sim"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(0.01, 0.01)
	truth := map[string]uint64{}
	rng := sim.NewRand(1)
	z := rng.NewZipf(1.3, 500)
	for i := 0; i < 50000; i++ {
		key := fmt.Sprintf("k%d", z.Next())
		cm.Add(key, 1)
		truth[key]++
	}
	for key, want := range truth {
		if got := cm.Count(key); got < want {
			t.Fatalf("count(%s) = %d < true %d", key, got, want)
		}
	}
	if cm.Total() != 50000 {
		t.Fatalf("Total = %d", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	eps := 0.001
	cm := NewCountMin(eps, 0.01)
	const n = 100000
	rng := sim.NewRand(2)
	z := rng.NewZipf(1.2, 2000)
	truth := map[string]uint64{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", z.Next())
		cm.Add(key, 1)
		truth[key]++
	}
	bound := uint64(3 * eps * n) // 3x slack over the probabilistic bound
	for key, want := range truth {
		if got := cm.Count(key); got-want > bound {
			t.Fatalf("count(%s) overestimates by %d > bound %d", key, got-want, bound)
		}
	}
}

func TestCountMinUnseenKeySmall(t *testing.T) {
	cm := NewCountMin(0.001, 0.01)
	for i := 0; i < 10000; i++ {
		cm.Add(fmt.Sprintf("k%d", i%100), 1)
	}
	if got := cm.Count("never-added"); got > 100 {
		t.Fatalf("unseen key count = %d", got)
	}
	if cm.MemoryBytes() <= 0 {
		t.Fatal("memory not reported")
	}
}

func TestHyperLogLogAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h := NewHyperLogLog(12) // ~1.6% stderr
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("item-%d", i))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.08 {
			t.Fatalf("n=%d: estimate %.0f, rel err %.3f > 8%%", n, est, relErr)
		}
	}
}

func TestHyperLogLogDuplicatesDoNotInflate(t *testing.T) {
	h := NewHyperLogLog(12)
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 1000; i++ {
			h.Add(fmt.Sprintf("dup-%d", i))
		}
	}
	est := h.Estimate()
	if est > 1200 || est < 800 {
		t.Fatalf("estimate with duplicates = %.0f, want ~1000", est)
	}
}

func TestHyperLogLogMerge(t *testing.T) {
	a, b := NewHyperLogLog(12), NewHyperLogLog(12)
	for i := 0; i < 5000; i++ {
		a.Add(fmt.Sprintf("a-%d", i))
		b.Add(fmt.Sprintf("b-%d", i))
	}
	if !a.Merge(b) {
		t.Fatal("merge of equal precision failed")
	}
	est := a.Estimate()
	if math.Abs(est-10000)/10000 > 0.08 {
		t.Fatalf("merged estimate = %.0f, want ~10000", est)
	}
	c := NewHyperLogLog(10)
	if a.Merge(c) {
		t.Fatal("merge across precisions succeeded")
	}
}

func TestHyperLogLogPrecisionClamped(t *testing.T) {
	if got := NewHyperLogLog(2).MemoryBytes(); got != 16 {
		t.Fatalf("low precision clamp: %d registers", got)
	}
	if got := NewHyperLogLog(20).MemoryBytes(); got != 1<<16 {
		t.Fatalf("high precision clamp: %d registers", got)
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	ss := NewSpaceSaving(50)
	rng := sim.NewRand(3)
	z := rng.NewZipf(1.5, 10000)
	truth := map[string]uint64{}
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("k%d", z.Next())
		ss.Add(key)
		truth[key]++
	}
	top := ss.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	// The true hottest key must be tracked and ranked first.
	var hottest string
	var hotCount uint64
	for k, c := range truth {
		if c > hotCount {
			hottest, hotCount = k, c
		}
	}
	if top[0].Key != hottest {
		t.Fatalf("top1 = %s (est %d), true hottest %s (%d)", top[0].Key, top[0].Count, hottest, hotCount)
	}
	// Estimates bound the truth: true in [Count-Err, Count].
	for _, hh := range top {
		want := truth[hh.Key]
		if want > hh.Count || want < hh.Count-hh.Err {
			t.Fatalf("%s: true %d outside [%d, %d]", hh.Key, want, hh.Count-hh.Err, hh.Count)
		}
	}
	if ss.Total() != 100000 {
		t.Fatalf("Total = %d", ss.Total())
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	// Any key with frequency > N/k must be present.
	const k, n = 20, 10000
	ss := NewSpaceSaving(k)
	// One key gets 10% of traffic (> N/k = 5%).
	for i := 0; i < n; i++ {
		if i%10 == 0 {
			ss.Add("elephant")
		} else {
			ss.Add(fmt.Sprintf("mouse-%d", i))
		}
	}
	for _, hh := range ss.TopK(k) {
		if hh.Key == "elephant" {
			return
		}
	}
	t.Fatal("guaranteed heavy hitter evicted")
}

func TestSpaceSavingDeterministicTies(t *testing.T) {
	ss := NewSpaceSaving(10)
	for _, k := range []string{"b", "a", "c"} {
		ss.Add(k)
	}
	top := ss.TopK(3)
	if top[0].Key != "a" || top[1].Key != "b" || top[2].Key != "c" {
		t.Fatalf("tie order = %v", top)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Sample 1000 of 100k sequential values: mean should approximate the
	// population mean.
	r := NewReservoir(1000, 7)
	const n = 100000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != n {
		t.Fatalf("Seen = %d", r.Seen())
	}
	s := r.Sample()
	if len(s) != 1000 {
		t.Fatalf("sample size = %d", len(s))
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	if math.Abs(mean-n/2)/(n/2) > 0.1 {
		t.Fatalf("sample mean %.0f, want ~%d", mean, n/2)
	}
}

func TestReservoirQuantiles(t *testing.T) {
	r := NewReservoir(2000, 8)
	for i := 0; i < 50000; i++ {
		r.Add(float64(i % 1000)) // uniform 0..999
	}
	p50 := r.Quantile(0.5)
	if math.Abs(p50-500) > 50 {
		t.Fatalf("p50 = %.0f, want ~500", p50)
	}
	if r.Quantile(0) > r.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(100, 9)
	r.Add(5)
	r.Add(10)
	s := r.Sample()
	if len(s) != 2 {
		t.Fatalf("sample = %v", s)
	}
	if got := r.Quantile(0.5); got < 5 || got > 10 {
		t.Fatalf("median = %v", got)
	}
	empty := NewReservoir(10, 1)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

// TestTopKIntoMatchesTopK checks the buffer-reusing snapshot returns
// exactly what the allocating form returns, with the destination reused
// (dirty) across sketches of different sizes.
func TestTopKIntoMatchesTopK(t *testing.T) {
	var dst []HeavyHitter
	for _, keys := range []int{0, 3, 64, 200} {
		ss := NewSpaceSaving(64)
		for i := 0; i < keys*31; i++ {
			// Skewed stream: key k appears ~k times per cycle.
			ss.Add(fmt.Sprintf("key-%d", i%keys+1))
			for j := 0; j < i%keys; j++ {
				ss.Add(fmt.Sprintf("key-%d", i%keys+1))
			}
		}
		for _, k := range []int{1, 5, 64} {
			want := ss.TopK(k)
			dst = ss.TopKInto(dst, k)
			if len(dst) != len(want) {
				t.Fatalf("keys=%d k=%d: TopKInto len %d, want %d", keys, k, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("keys=%d k=%d: entry %d = %+v, want %+v", keys, k, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestTopKIntoSteadyStateAllocs checks a warmed snapshot buffer makes the
// per-frame sketch snapshot allocation-free.
func TestTopKIntoSteadyStateAllocs(t *testing.T) {
	ss := NewSpaceSaving(64)
	for i := 0; i < 5000; i++ {
		ss.Add(fmt.Sprintf("key-%d", i%100))
	}
	var dst []HeavyHitter
	for i := 0; i < 4; i++ {
		dst = ss.TopKInto(dst, 1)
	}
	allocs := testing.AllocsPerRun(50, func() {
		dst = ss.TopKInto(dst, 1)
	})
	if allocs > 0 {
		t.Fatalf("TopKInto allocates %.1f objects/op in steady state, want 0", allocs)
	}
}
