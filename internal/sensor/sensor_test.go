package sensor

import (
	"math"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

var (
	origin = geo.Point{Lat: 22.3364, Lon: 114.2655}
	t0     = sim.Epoch
)

func TestWalkerStaysInDisc(t *testing.T) {
	w := NewWalker(WalkerConfig{Center: origin, RadiusM: 500, Seed: 1})
	for i := 0; i < 5000; i++ {
		p := w.Step(time.Second)
		if d := geo.DistanceMeters(origin, p.Position); d > 550 { // small overshoot slack
			t.Fatalf("walker escaped: %.0f m at step %d", d, i)
		}
	}
}

func TestWalkerMovesAtConfiguredSpeed(t *testing.T) {
	w := NewWalker(WalkerConfig{Center: origin, RadiusM: 2000, SpeedMps: 2, Seed: 2})
	prev := w.Pose().Position
	var total float64
	const steps = 600
	for i := 0; i < steps; i++ {
		p := w.Step(time.Second)
		total += geo.DistanceMeters(prev, p.Position)
		prev = p.Position
	}
	perSec := total / steps
	if math.Abs(perSec-2) > 0.1 {
		t.Fatalf("speed = %.2f m/s, want 2", perSec)
	}
}

func TestWalkerHeadingContinuous(t *testing.T) {
	w := NewWalker(WalkerConfig{Center: origin, Seed: 3})
	prev := w.Pose().HeadingDeg
	for i := 0; i < 2000; i++ {
		p := w.Step(100 * time.Millisecond)
		d := math.Abs(angleDiff(p.HeadingDeg, prev))
		if d > w.HeadingRateDegPerSec()*0.1+1e-9 {
			t.Fatalf("heading jumped %.1f° in 100ms at step %d", d, i)
		}
		prev = p.HeadingDeg
	}
}

func TestWalkerDeterministic(t *testing.T) {
	a := NewWalker(WalkerConfig{Center: origin, Seed: 4})
	b := NewWalker(WalkerConfig{Center: origin, Seed: 4})
	for i := 0; i < 100; i++ {
		if a.Step(time.Second) != b.Step(time.Second) {
			t.Fatalf("walkers diverged at step %d", i)
		}
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ b, a, want float64 }{
		{90, 0, 90},
		{0, 90, -90},
		{350, 10, -20},
		{10, 350, 20},
		{180, 0, 180},
	}
	for _, c := range cases {
		if got := angleDiff(c.b, c.a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("angleDiff(%v,%v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestGPSNoiseMagnitude(t *testing.T) {
	g := NewGPS(5, 5)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		fix := g.Fix(t0, origin)
		sum += geo.DistanceMeters(origin, fix.Position)
		if fix.AccuracyM != 5 {
			t.Fatalf("accuracy = %v", fix.AccuracyM)
		}
	}
	mean := sum / n
	// Mean error should be a few meters for sigma=5 with bias up to 10.
	if mean < 1 || mean > 15 {
		t.Fatalf("mean GPS error = %.1f m, want 1..15", mean)
	}
}

func TestIMUTracksTurnRate(t *testing.T) {
	m := NewIMU(6)
	pose := Pose{HeadingDeg: 0}
	m.Sample(t0, pose, 0)
	var sum float64
	const n = 500
	for i := 1; i <= n; i++ {
		pose.HeadingDeg = math.Mod(pose.HeadingDeg+9, 360) // 9 deg per 100ms = 90 deg/s
		s := m.Sample(t0.Add(time.Duration(i)*100*time.Millisecond), pose, 100*time.Millisecond)
		sum += s.GyroZRad
	}
	meanRate := sum / n * 180 / math.Pi
	if math.Abs(meanRate-90) > 6 {
		t.Fatalf("mean gyro rate = %.1f deg/s, want ~90", meanRate)
	}
}

func TestIMUCompassUnbiasedOnAverage(t *testing.T) {
	m := NewIMU(7)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		s := m.Sample(t0, Pose{HeadingDeg: 90}, time.Second)
		sum += angleDiff(s.CompassDeg, 90)
	}
	if mean := sum / n; math.Abs(mean) > 1 {
		t.Fatalf("compass bias = %.2f deg", mean)
	}
}

func visiblePOI(id uint64, from Pose, bearing, dist, height float64) geo.POI {
	return geo.POI{
		ID:           id,
		Location:     geo.Destination(from.Position, bearing, dist),
		HeightMeters: height,
	}
}

func TestCameraFOVAndRange(t *testing.T) {
	cam := NewCamera(CameraConfig{Seed: 8, FOVDeg: 60, RangeM: 100, AngleSigma: 0.1})
	pose := Pose{Position: origin, HeadingDeg: 0, AltitudeM: 1.6}
	pois := []geo.POI{
		visiblePOI(1, pose, 0, 50, 10),   // dead ahead: visible
		visiblePOI(2, pose, 90, 50, 10),  // off to the right: outside FOV
		visiblePOI(3, pose, 0, 500, 10),  // ahead but too far
		visiblePOI(4, pose, -20, 30, 10), // in FOV
		visiblePOI(5, pose, 180, 20, 10), // behind
	}
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		for _, o := range cam.Observe(t0, pose, pois) {
			seen[o.POIID]++
		}
	}
	if seen[2] > 0 || seen[3] > 0 || seen[5] > 0 {
		t.Fatalf("observed out-of-view landmarks: %v", seen)
	}
	if seen[1] == 0 || seen[4] == 0 {
		t.Fatalf("in-view landmarks never observed: %v", seen)
	}
}

func TestCameraBearingAccuracy(t *testing.T) {
	cam := NewCamera(CameraConfig{Seed: 9, FOVDeg: 90, RangeM: 200, AngleSigma: 0.5})
	pose := Pose{Position: origin, HeadingDeg: 45, AltitudeM: 1.6}
	poi := visiblePOI(7, pose, 65, 40, 10) // 20 deg right of axis
	var sum float64
	n := 0
	for i := 0; i < 500; i++ {
		for _, o := range cam.Observe(t0, pose, []geo.POI{poi}) {
			sum += o.RelBearing
			n++
		}
	}
	if n == 0 {
		t.Fatal("landmark never recognised")
	}
	if mean := sum / float64(n); math.Abs(mean-20) > 0.5 {
		t.Fatalf("mean rel bearing = %.2f, want 20", mean)
	}
}

func TestCameraRecognitionDecaysWithDistance(t *testing.T) {
	cam := NewCamera(CameraConfig{Seed: 10, FOVDeg: 90, RangeM: 150})
	pose := Pose{Position: origin, HeadingDeg: 0, AltitudeM: 1.6}
	near := visiblePOI(1, pose, 0, 20, 10)
	far := visiblePOI(2, pose, 5, 140, 10)
	hits := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		for _, o := range cam.Observe(t0, pose, []geo.POI{near, far}) {
			hits[o.POIID]++
		}
	}
	if hits[1] <= hits[2] {
		t.Fatalf("near (%d) not recognised more than far (%d)", hits[1], hits[2])
	}
}

func TestGazeFixatesAndDwells(t *testing.T) {
	g := NewGaze(11)
	targets := []uint64{101, 102, 103}
	counts := map[uint64]int{}
	var maxDwell float64
	for i := 0; i < 2000; i++ {
		s := g.Sample(t0.Add(time.Duration(i)*100*time.Millisecond), 100*time.Millisecond, targets)
		if s.TargetID == 0 {
			t.Fatal("no fixation despite targets")
		}
		counts[s.TargetID]++
		if s.DwellMS > maxDwell {
			maxDwell = s.DwellMS
		}
	}
	// Salience bias: first target should collect the most fixations.
	if counts[101] <= counts[103] {
		t.Fatalf("salience bias missing: %v", counts)
	}
	if maxDwell < 200 {
		t.Fatalf("max dwell %.0f ms; fixations never persist", maxDwell)
	}
	// No targets clears fixation.
	if s := g.Sample(t0, 100*time.Millisecond, nil); s.TargetID != 0 {
		t.Fatal("fixation persists without targets")
	}
}

func TestVitalsBaselineAndEpisode(t *testing.T) {
	v := NewVitals(12)
	var hrSum float64
	n := 0
	for i := 0; i < 300; i++ {
		for _, s := range v.Sample(t0.Add(time.Duration(i) * time.Second)) {
			if s.Anomaly {
				t.Fatal("anomaly label without episode")
			}
			if s.Kind == VitalHeartRate {
				hrSum += s.Value
				n++
			}
		}
	}
	base := hrSum / float64(n)
	if base < 50 || base > 130 {
		t.Fatalf("baseline HR = %.0f", base)
	}
	// Start an episode: HR must jump and labels flip.
	epStart := t0.Add(400 * time.Second)
	v.StartEpisode(epStart, time.Minute)
	var epHR float64
	epN := 0
	for i := 0; i < 30; i++ {
		for _, s := range v.Sample(epStart.Add(time.Duration(i) * time.Second)) {
			if !s.Anomaly {
				t.Fatal("episode sample not labelled")
			}
			if s.Kind == VitalHeartRate {
				epHR += s.Value
				epN++
			}
		}
	}
	if epHR/float64(epN) < base+35 {
		t.Fatalf("episode HR %.0f not elevated over base %.0f", epHR/float64(epN), base)
	}
	// After the episode the label clears.
	after := epStart.Add(2 * time.Minute)
	for _, s := range v.Sample(after) {
		if s.Anomaly {
			t.Fatal("anomaly label after episode end")
		}
	}
}

func TestBatteryDrainAndRuntime(t *testing.T) {
	b := NewBattery(10) // 36 kJ
	if b.Level() != 1 {
		t.Fatalf("initial level = %v", b.Level())
	}
	if !b.Drain(18000) {
		t.Fatal("half drain reported empty")
	}
	if math.Abs(b.Level()-0.5) > 1e-9 {
		t.Fatalf("level = %v, want 0.5", b.Level())
	}
	if b.Drain(20000) {
		t.Fatal("over-drain reported charge")
	}
	if b.Level() != 0 {
		t.Fatalf("level = %v, want 0", b.Level())
	}
	if rt := NewBattery(10).RuntimeAt(2.5); rt != 4*time.Hour {
		t.Fatalf("runtime = %v, want 4h", rt)
	}
}

func TestVitalKindStrings(t *testing.T) {
	for _, k := range []VitalKind{VitalHeartRate, VitalSpO2, VitalSystolicBP} {
		if k.String() == "" || k.String() == "vital(?)" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
