// Package sensor simulates the mobile/wearable device side of the platform:
// pedestrian motion, GPS fixes, inertial samples, camera landmark
// observations, eye gaze, health vitals, and battery state. Real AR hardware
// is a repro gate (DESIGN.md); these simulators emit the same event streams
// with controllable noise AND expose ground truth, which lets experiments
// measure registration and alerting accuracy that physical devices cannot
// provide offline.
package sensor

import (
	"math"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

// Pose is the device's position and orientation.
type Pose struct {
	Position   geo.Point
	HeadingDeg float64 // compass heading of the camera's optical axis
	PitchDeg   float64 // up/down tilt
	AltitudeM  float64 // height above ground (eye level)
}

// GPSFix is one positioning sample.
type GPSFix struct {
	Time      time.Time
	Position  geo.Point
	AccuracyM float64 // reported 1-sigma horizontal accuracy
}

// IMUSample is one inertial sample.
type IMUSample struct {
	Time       time.Time
	GyroZRad   float64 // yaw rate, rad/s (positive = clockwise)
	AccelMps2  float64 // forward acceleration
	CompassDeg float64 // magnetometer heading (noisy, biased)
}

// Walker is a random-waypoint pedestrian ground-truth model: it walks toward
// a target inside a disc, picks a new target on arrival, and turns with
// bounded angular rate so headings are smooth like a human's.
type Walker struct {
	rng      *sim.Rand
	center   geo.Point
	radiusM  float64
	speedMps float64
	turnRate float64 // max deg/s

	pos     geo.Point
	heading float64
	target  geo.Point
}

// WalkerConfig parameterises a Walker.
type WalkerConfig struct {
	Center   geo.Point
	RadiusM  float64 // roaming disc radius (default 1000)
	SpeedMps float64 // walking speed (default 1.4, human average)
	Seed     int64
}

// NewWalker returns a walker starting at the disc centre.
func NewWalker(cfg WalkerConfig) *Walker {
	if cfg.RadiusM <= 0 {
		cfg.RadiusM = 1000
	}
	if cfg.SpeedMps <= 0 {
		cfg.SpeedMps = 1.4
	}
	w := &Walker{
		rng:      sim.NewRand(cfg.Seed).Child("walker"),
		center:   cfg.Center,
		radiusM:  cfg.RadiusM,
		speedMps: cfg.SpeedMps,
		turnRate: 60,
		pos:      cfg.Center,
	}
	w.pickTarget()
	w.heading = geo.BearingDegrees(w.pos, w.target)
	return w
}

func (w *Walker) pickTarget() {
	w.target = geo.Destination(w.center, w.rng.Uniform(0, 360), w.radiusM*math.Sqrt(w.rng.Float64()))
}

// Step advances the walker by dt and returns the new ground-truth pose.
func (w *Walker) Step(dt time.Duration) Pose {
	secs := dt.Seconds()
	if secs <= 0 {
		return w.Pose()
	}
	if geo.DistanceMeters(w.pos, w.target) < w.speedMps*secs*2 {
		w.pickTarget()
	}
	want := geo.BearingDegrees(w.pos, w.target)
	diff := angleDiff(want, w.heading)
	maxTurn := w.turnRate * secs
	if diff > maxTurn {
		diff = maxTurn
	}
	if diff < -maxTurn {
		diff = -maxTurn
	}
	w.heading = math.Mod(w.heading+diff+360, 360)
	w.pos = geo.Destination(w.pos, w.heading, w.speedMps*secs)
	return w.Pose()
}

// Pose returns the current ground-truth pose.
func (w *Walker) Pose() Pose {
	return Pose{Position: w.pos, HeadingDeg: w.heading, AltitudeM: 1.6}
}

// HeadingRateDegPerSec exposes the walker's turn limit (tests use it).
func (w *Walker) HeadingRateDegPerSec() float64 { return w.turnRate }

// angleDiff returns the signed smallest rotation from a to b in degrees,
// in (-180, 180].
func angleDiff(b, a float64) float64 {
	d := math.Mod(b-a+540, 360) - 180
	if d == -180 {
		return 180
	}
	return d
}

// GPS produces fixes from ground truth with gaussian horizontal error and a
// slowly wandering bias (multipath), the dominant urban GPS error mode.
type GPS struct {
	rng     *sim.Rand
	sigmaM  float64
	biasM   float64
	biasDir float64
}

// NewGPS returns a GPS with the given 1-sigma noise in meters.
func NewGPS(seed int64, sigmaM float64) *GPS {
	if sigmaM <= 0 {
		sigmaM = 5
	}
	r := sim.NewRand(seed).Child("gps")
	return &GPS{rng: r, sigmaM: sigmaM, biasDir: r.Uniform(0, 360)}
}

// Fix samples a fix for the true position at now.
func (g *GPS) Fix(now time.Time, truth geo.Point) GPSFix {
	// Bias random-walks up to ~2 sigma.
	g.biasM = sim.Clamp(g.biasM+g.rng.Norm(0, g.sigmaM/10), 0, 2*g.sigmaM)
	g.biasDir += g.rng.Norm(0, 5)
	p := geo.Destination(truth, g.biasDir, g.biasM)
	p = geo.Destination(p, g.rng.Uniform(0, 360), math.Abs(g.rng.Norm(0, g.sigmaM)))
	return GPSFix{Time: now, Position: p, AccuracyM: g.sigmaM}
}

// IMU produces inertial samples with white noise and slowly drifting gyro
// bias — the error that makes dead reckoning diverge and fusion necessary.
type IMU struct {
	rng        *sim.Rand
	gyroNoise  float64 // rad/s white noise sigma
	gyroBias   float64 // rad/s, drifts
	compassSig float64 // deg
	lastHdg    float64
	hasLast    bool
}

// NewIMU returns an IMU with typical MEMS noise characteristics.
func NewIMU(seed int64) *IMU {
	return &IMU{
		rng:        sim.NewRand(seed).Child("imu"),
		gyroNoise:  0.02,
		compassSig: 8,
	}
}

// Sample derives an inertial sample from consecutive ground-truth poses.
func (m *IMU) Sample(now time.Time, truth Pose, dt time.Duration) IMUSample {
	m.gyroBias = sim.Clamp(m.gyroBias+m.rng.Norm(0, 0.0005), -0.05, 0.05)
	var rate float64
	if m.hasLast && dt > 0 {
		rate = angleDiff(truth.HeadingDeg, m.lastHdg) * math.Pi / 180 / dt.Seconds()
	}
	m.lastHdg = truth.HeadingDeg
	m.hasLast = true
	return IMUSample{
		Time:       now,
		GyroZRad:   rate + m.gyroBias + m.rng.Norm(0, m.gyroNoise),
		AccelMps2:  m.rng.Norm(0, 0.3),
		CompassDeg: math.Mod(truth.HeadingDeg+m.rng.Norm(0, m.compassSig)+360, 360),
	}
}
