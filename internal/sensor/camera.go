package sensor

import (
	"math"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sim"
)

// LandmarkObservation is the camera simulator's output: a recognised
// landmark (a POI with a visual signature) and the bearing/elevation at
// which it appears relative to the camera axis, with pixel-level noise.
// This substitutes for running a real detector+descriptor pipeline: the
// tracking layer consumes exactly what such a pipeline would produce.
type LandmarkObservation struct {
	POIID        uint64
	RelBearing   float64 // degrees, 0 = optical axis, + = right
	RelElevation float64 // degrees above axis
	Confidence   float64 // 0..1, decays with distance
}

// Camera simulates landmark recognition: POIs inside the field of view and
// recognition range are observed with angular noise; recognition can fail
// with distance-dependent probability.
type Camera struct {
	rng        *sim.Rand
	fovDeg     float64
	rangeM     float64
	angleSigma float64
}

// CameraConfig parameterises a Camera.
type CameraConfig struct {
	Seed       int64
	FOVDeg     float64 // horizontal field of view (default 60)
	RangeM     float64 // max recognition distance (default 150)
	AngleSigma float64 // angular observation noise, degrees (default 0.5)
}

// NewCamera returns a camera simulator.
func NewCamera(cfg CameraConfig) *Camera {
	if cfg.FOVDeg <= 0 {
		cfg.FOVDeg = 60
	}
	if cfg.RangeM <= 0 {
		cfg.RangeM = 150
	}
	if cfg.AngleSigma <= 0 {
		cfg.AngleSigma = 0.5
	}
	return &Camera{
		rng:        sim.NewRand(cfg.Seed).Child("camera"),
		fovDeg:     cfg.FOVDeg,
		rangeM:     cfg.RangeM,
		angleSigma: cfg.AngleSigma,
	}
}

// FOVDeg returns the camera's horizontal field of view.
func (c *Camera) FOVDeg() float64 { return c.fovDeg }

// Observe returns landmark observations for the POIs visible from the true
// pose. Landmarks beyond range or outside the FOV are never observed;
// in-view landmarks drop out with probability growing with distance.
func (c *Camera) Observe(_ time.Time, truth Pose, pois []geo.POI) []LandmarkObservation {
	var out []LandmarkObservation
	for _, p := range pois {
		d := geo.DistanceMeters(truth.Position, p.Location)
		if d > c.rangeM || d < 0.5 {
			continue
		}
		brg := geo.BearingDegrees(truth.Position, p.Location)
		rel := angleDiff(brg, truth.HeadingDeg)
		if math.Abs(rel) > c.fovDeg/2 {
			continue
		}
		// Recognition probability decays linearly with distance.
		pRecognise := 1 - 0.6*(d/c.rangeM)
		if !c.rng.Bool(pRecognise) {
			continue
		}
		elev := math.Atan2(p.HeightMeters/2-truth.AltitudeM, d) * 180 / math.Pi
		out = append(out, LandmarkObservation{
			POIID:        p.ID,
			RelBearing:   rel + c.rng.Norm(0, c.angleSigma),
			RelElevation: elev + c.rng.Norm(0, c.angleSigma),
			Confidence:   sim.Clamp(pRecognise, 0, 1),
		})
	}
	return out
}

// GazeSample is one eye-tracking sample: which annotation (by ID) the user
// is looking at, if any, and the dwell time accumulated on it.
type GazeSample struct {
	Time     time.Time
	TargetID uint64 // 0 = no target
	DwellMS  float64
}

// Gaze simulates visual attention over a set of on-screen targets:
// attention is zipfian over targets (people fixate on few things), with
// saccades between fixations.
type Gaze struct {
	rng        *sim.Rand
	current    uint64
	dwellMS    float64
	switchProb float64
}

// NewGaze returns a gaze simulator.
func NewGaze(seed int64) *Gaze {
	return &Gaze{rng: sim.NewRand(seed).Child("gaze"), switchProb: 0.15}
}

// Sample picks or keeps a fixation among targets (on-screen annotation IDs,
// ordered by salience descending).
func (g *Gaze) Sample(now time.Time, dt time.Duration, targets []uint64) GazeSample {
	if len(targets) == 0 {
		g.current, g.dwellMS = 0, 0
		return GazeSample{Time: now}
	}
	stillVisible := false
	for _, id := range targets {
		if id == g.current {
			stillVisible = true
			break
		}
	}
	if g.current == 0 || !stillVisible || g.rng.Bool(g.switchProb) {
		// Saccade: pick a new target, biased to salient (early) entries.
		idx := int(math.Floor(math.Pow(g.rng.Float64(), 2) * float64(len(targets))))
		if idx >= len(targets) {
			idx = len(targets) - 1
		}
		g.current = targets[idx]
		g.dwellMS = 0
	}
	g.dwellMS += float64(dt.Milliseconds())
	return GazeSample{Time: now, TargetID: g.current, DwellMS: g.dwellMS}
}

// VitalKind identifies a vital-sign stream. Enums start at 1.
type VitalKind int

// Vital kinds produced by the wearable simulator.
const (
	VitalHeartRate VitalKind = iota + 1
	VitalSpO2
	VitalSystolicBP
)

// String returns the vital's name.
func (v VitalKind) String() string {
	switch v {
	case VitalHeartRate:
		return "heart_rate"
	case VitalSpO2:
		return "spo2"
	case VitalSystolicBP:
		return "systolic_bp"
	default:
		return "vital(?)"
	}
}

// VitalSample is one wearable measurement.
type VitalSample struct {
	Time    time.Time
	Kind    VitalKind
	Value   float64
	Anomaly bool // ground-truth label: sample produced during an episode
}

// Vitals simulates a wearable's health streams: baselines with activity
// drift plus injectable anomaly episodes (tachycardia, desaturation) whose
// ground truth labels let the healthcare experiment measure alert
// precision/recall and latency.
type Vitals struct {
	rng          *sim.Rand
	hrBase       float64
	spo2Base     float64
	bpBase       float64
	activity     float64
	episodeStart time.Time
	episodeEnd   time.Time
	episode      bool
}

// NewVitals returns a vitals simulator with per-person randomised baselines.
func NewVitals(seed int64) *Vitals {
	r := sim.NewRand(seed).Child("vitals")
	return &Vitals{
		rng:      r,
		hrBase:   r.Uniform(58, 82),
		spo2Base: r.Uniform(96, 99),
		bpBase:   r.Uniform(105, 135),
	}
}

// StartEpisode schedules an anomaly episode covering [start, start+d).
// Scheduling in the future is allowed; samples before start stay normal.
func (v *Vitals) StartEpisode(start time.Time, d time.Duration) {
	v.episode = true
	v.episodeStart = start
	v.episodeEnd = start.Add(d)
}

// InEpisode reports whether an episode is active at now.
func (v *Vitals) InEpisode(now time.Time) bool {
	return v.episode && !now.Before(v.episodeStart) && now.Before(v.episodeEnd)
}

// Sample produces one sample of each vital at now.
func (v *Vitals) Sample(now time.Time) []VitalSample {
	if v.episode && !now.Before(v.episodeEnd) {
		v.episode = false
	}
	v.activity = sim.Clamp(v.activity+v.rng.Norm(0, 0.05), 0, 1)
	anomaly := v.InEpisode(now)
	hr := v.hrBase + 40*v.activity + v.rng.Norm(0, 2)
	spo2 := v.spo2Base - 1.5*v.activity + v.rng.Norm(0, 0.3)
	bp := v.bpBase + 20*v.activity + v.rng.Norm(0, 3)
	if anomaly {
		hr += 55 + v.rng.Norm(0, 5) // tachycardia
		spo2 -= 7 + v.rng.Norm(0, 1)
	}
	return []VitalSample{
		{Time: now, Kind: VitalHeartRate, Value: hr, Anomaly: anomaly},
		{Time: now, Kind: VitalSpO2, Value: sim.Clamp(spo2, 70, 100), Anomaly: anomaly},
		{Time: now, Kind: VitalSystolicBP, Value: bp, Anomaly: anomaly},
	}
}

// Battery models the device battery, the §4 "battery life" barrier.
type Battery struct {
	capacityJ float64
	usedJ     float64
}

// NewBattery returns a battery with the given capacity in watt-hours
// (a 2017-era phone is ~10 Wh).
func NewBattery(wattHours float64) *Battery {
	if wattHours <= 0 {
		wattHours = 10
	}
	return &Battery{capacityJ: wattHours * 3600}
}

// Drain consumes joules (negative values are ignored) and reports whether
// the battery still has charge.
func (b *Battery) Drain(joules float64) bool {
	if joules > 0 {
		b.usedJ += joules
	}
	return b.usedJ < b.capacityJ
}

// Level returns remaining charge in [0, 1].
func (b *Battery) Level() float64 {
	l := 1 - b.usedJ/b.capacityJ
	if l < 0 {
		return 0
	}
	return l
}

// RuntimeAt returns how long the battery lasts from full at a constant power
// draw.
func (b *Battery) RuntimeAt(watts float64) time.Duration {
	if watts <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(b.capacityJ / watts * float64(time.Second))
}
