package tracking

import (
	"math"
	"testing"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sensor"
	"arbd/internal/sim"
)

var (
	origin = geo.Point{Lat: 22.3364, Lon: 114.2655}
	t0     = sim.Epoch
)

func TestENURoundTrip(t *testing.T) {
	pts := []geo.Point{
		origin,
		geo.Destination(origin, 45, 500),
		geo.Destination(origin, 270, 1500),
	}
	for _, p := range pts {
		back := FromENU(origin, ToENU(origin, p))
		if d := geo.DistanceMeters(p, back); d > 0.01 {
			t.Fatalf("round trip error %.4f m for %v", d, p)
		}
	}
}

func TestENUAxes(t *testing.T) {
	east := geo.Destination(origin, 90, 100)
	e := ToENU(origin, east)
	if math.Abs(e.E-100) > 1 || math.Abs(e.N) > 1 {
		t.Fatalf("east point ENU = %+v", e)
	}
	north := geo.Destination(origin, 0, 100)
	n := ToENU(origin, north)
	if math.Abs(n.N-100) > 1 || math.Abs(n.E) > 1 {
		t.Fatalf("north point ENU = %+v", n)
	}
}

func TestPositionFilterConvergesOnStatic(t *testing.T) {
	// A near-static process model (tiny accel noise) lets the filter
	// average measurements aggressively; mean tail error must be well
	// below the raw 5 m measurement noise.
	rng := sim.NewRand(1)
	f := NewPositionFilter(ENU{E: 50, N: -50}, 0.05) // bad initial guess
	var tailErr float64
	const steps, tail = 100, 20
	for i := 0; i < steps; i++ {
		f.Predict(1)
		f.UpdatePosition(ENU{E: rng.Norm(0, 5), N: rng.Norm(0, 5)}, 5)
		if i >= steps-tail {
			s := f.State()
			tailErr += math.Hypot(s.E, s.N)
		}
	}
	if mean := tailErr / tail; mean > 2.5 {
		t.Fatalf("static convergence mean error %.2f m", mean)
	}
	if f.Uncertainty() > 5 {
		t.Fatalf("uncertainty %.2f did not shrink", f.Uncertainty())
	}
}

func TestPositionFilterTracksConstantVelocity(t *testing.T) {
	rng := sim.NewRand(2)
	f := NewPositionFilter(ENU{}, 0.1)
	// Target moves east at 2 m/s.
	for i := 1; i <= 200; i++ {
		f.Predict(1)
		truthE := 2 * float64(i)
		f.UpdatePosition(ENU{E: truthE + rng.Norm(0, 5), N: rng.Norm(0, 5)}, 5)
	}
	ve, vn := f.Velocity()
	if math.Abs(ve-2) > 0.5 || math.Abs(vn) > 0.5 {
		t.Fatalf("velocity = (%.2f, %.2f), want (2, 0)", ve, vn)
	}
	// Filtered error should beat raw measurement noise.
	got := f.State()
	if err := math.Abs(got.E - 400); err > 4 {
		t.Fatalf("position error %.2f m", err)
	}
}

func TestPositionFilterSmoothsNoise(t *testing.T) {
	rng := sim.NewRand(3)
	f := NewPositionFilter(ENU{}, 0.3)
	var rawErr, filtErr float64
	const n = 200
	for i := 0; i < n; i++ {
		f.Predict(1)
		z := ENU{E: rng.Norm(0, 8), N: rng.Norm(0, 8)}
		f.UpdatePosition(z, 8)
		rawErr += math.Hypot(z.E, z.N)
		s := f.State()
		filtErr += math.Hypot(s.E, s.N)
	}
	if filtErr >= rawErr*0.6 {
		t.Fatalf("filter error %.1f not well below raw %.1f", filtErr/n, rawErr/n)
	}
}

func TestHeadingFilterGyroIntegration(t *testing.T) {
	h := NewHeadingFilter(0)
	// 90 deg/s for 1 s in 10 steps, no corrections.
	for i := 0; i < 10; i++ {
		h.Predict(math.Pi/2, 0.1)
	}
	if math.Abs(wrap180(h.Heading()-90)) > 0.5 {
		t.Fatalf("integrated heading = %.1f, want 90", h.Heading())
	}
	if h.Sigma() <= NewHeadingFilter(0).Sigma()-1 {
		t.Fatal("uncertainty should grow without corrections")
	}
}

func TestHeadingFilterCorrectionsShrinkError(t *testing.T) {
	rng := sim.NewRand(4)
	h := NewHeadingFilter(200) // way off; truth is 10
	for i := 0; i < 50; i++ {
		h.Predict(0, 0.1)
		h.Update(10+rng.Norm(0, 3), 3)
	}
	if err := math.Abs(wrap180(h.Heading() - 10)); err > 2 {
		t.Fatalf("heading error %.2f after corrections", err)
	}
	if h.Sigma() > 3 {
		t.Fatalf("sigma = %.2f", h.Sigma())
	}
}

func TestHeadingFilterWrapAround(t *testing.T) {
	h := NewHeadingFilter(359)
	for i := 0; i < 30; i++ {
		h.Predict(0, 0.1)
		h.Update(1, 2) // truth just across the wrap
	}
	if err := math.Abs(wrap180(h.Heading() - 1)); err > 2 {
		t.Fatalf("wrap handling error %.2f (heading %.1f)", err, h.Heading())
	}
}

// buildWorld creates a walker plus landmark store for fusion tests.
func buildWorld(seed int64) (*sensor.Walker, *geo.Store) {
	city := geo.GenerateCity(geo.CityConfig{
		Center: origin, RadiusM: 800, NumPOIs: 300, TallRatio: 0.2, Seed: seed,
	})
	store, err := geo.LoadStore(city, geo.IndexRTree)
	if err != nil {
		panic(err)
	}
	return sensor.NewWalker(sensor.WalkerConfig{Center: origin, RadiusM: 400, Seed: seed}), store
}

// runFusion walks for the given number of 100 ms steps feeding the fuser,
// returning mean registration errors. Vision can be disabled to measure its
// contribution.
func runFusion(t *testing.T, seed int64, steps int, useVision bool) RegError {
	t.Helper()
	walker, store := buildWorld(seed)
	gps := sensor.NewGPS(seed, 5)
	imu := sensor.NewIMU(seed)
	cam := sensor.NewCamera(sensor.CameraConfig{Seed: seed})
	var visionStore *geo.Store
	if useVision {
		visionStore = store
	}
	f := NewFuser(origin, visionStore)

	const dt = 100 * time.Millisecond
	var sum RegError
	n := 0
	for i := 0; i < steps; i++ {
		now := t0.Add(time.Duration(i) * dt)
		truth := walker.Step(dt)
		f.OnIMU(imu.Sample(now, truth, dt))
		if i%10 == 0 { // GPS at 1 Hz
			f.OnGPS(gps.Fix(now, truth.Position))
		}
		if useVision && i%3 == 0 { // vision at ~3 Hz
			near := store.QueryRadius(truth.Position, 160, 0)
			f.OnVision(now, cam.Observe(now, truth, near))
		}
		if i > steps/2 { // measure after convergence
			e := Register(f.Pose(), truth, 60, 1280)
			sum.PositionM += e.PositionM
			sum.HeadingDeg += e.HeadingDeg
			sum.PixelErr += e.PixelErr
			n++
		}
	}
	return RegError{
		PositionM:  sum.PositionM / float64(n),
		HeadingDeg: sum.HeadingDeg / float64(n),
		PixelErr:   sum.PixelErr / float64(n),
	}
}

func TestFusionAccuracy(t *testing.T) {
	e := runFusion(t, 10, 1200, true)
	if e.PositionM > 8 {
		t.Fatalf("mean position error %.1f m", e.PositionM)
	}
	if e.HeadingDeg > 5 {
		t.Fatalf("mean heading error %.1f deg", e.HeadingDeg)
	}
}

func TestVisionImprovesHeading(t *testing.T) {
	withVision := runFusion(t, 11, 1200, true)
	without := runFusion(t, 11, 1200, false)
	if withVision.HeadingDeg >= without.HeadingDeg {
		t.Fatalf("vision did not improve heading: %.2f vs %.2f deg",
			withVision.HeadingDeg, without.HeadingDeg)
	}
}

func TestFuserUpdateCounts(t *testing.T) {
	_, store := buildWorld(12)
	f := NewFuser(origin, store)
	f.OnGPS(sensor.GPSFix{Time: t0, Position: origin, AccuracyM: 5})
	gps, vision := f.UpdateCounts()
	if gps != 1 || vision != 0 {
		t.Fatalf("counts = %d, %d", gps, vision)
	}
	// Vision against an unknown POI is ignored.
	f.OnVision(t0.Add(time.Second), []sensor.LandmarkObservation{{POIID: 999999, Confidence: 1}})
	if _, vision = f.UpdateCounts(); vision != 0 {
		t.Fatal("unknown landmark produced a vision update")
	}
}

func TestRegisterMetric(t *testing.T) {
	truth := sensor.Pose{Position: origin, HeadingDeg: 90}
	est := sensor.Pose{Position: origin, HeadingDeg: 95}
	e := Register(est, truth, 60, 1200) // 20 px per degree
	if e.HeadingDeg != 5 {
		t.Fatalf("heading err = %v", e.HeadingDeg)
	}
	if e.PositionM != 0 {
		t.Fatalf("pos err = %v", e.PositionM)
	}
	if math.Abs(e.PixelErr-100) > 1 {
		t.Fatalf("pixel err = %.1f, want ~100", e.PixelErr)
	}
	// Position error adds apparent pixel error too.
	est2 := sensor.Pose{Position: geo.Destination(origin, 0, 5), HeadingDeg: 90}
	e2 := Register(est2, truth, 60, 1200)
	if e2.PixelErr <= 0 {
		t.Fatal("position error produced no pixel error")
	}
}
