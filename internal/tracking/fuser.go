package tracking

import (
	"math"
	"time"

	"arbd/internal/geo"
	"arbd/internal/sensor"
)

// Fuser combines GPS, IMU, and camera landmark observations into a 6-DoF-ish
// pose estimate (position + heading; pitch and altitude pass through). It is
// the registration core of the AR pipeline: §1's "registered in 3-D"
// requirement.
type Fuser struct {
	origin geo.Point
	pos    *PositionFilter
	hdg    *HeadingFilter
	pois   *geo.Store
	last   time.Time
	has    bool

	visionUpdates int
	gpsUpdates    int
}

// NewFuser returns a fuser anchored at origin (used as the local projection
// origin) with landmark positions resolved from the POI store. A nil store
// disables vision corrections.
func NewFuser(origin geo.Point, pois *geo.Store) *Fuser {
	return &Fuser{
		origin: origin,
		pos:    NewPositionFilter(ENU{}, 0.5),
		hdg:    NewHeadingFilter(0),
		pois:   pois,
	}
}

// advance runs the prediction step up to now using the given gyro rate.
func (f *Fuser) advance(now time.Time, gyroZRad float64) {
	if !f.has {
		f.last = now
		f.has = true
		return
	}
	dt := now.Sub(f.last).Seconds()
	if dt > 0 {
		f.pos.Predict(dt)
		f.hdg.Predict(gyroZRad, dt)
		f.last = now
	}
}

// OnIMU integrates an inertial sample: gyro drives heading prediction and
// the compass provides a weak absolute correction.
func (f *Fuser) OnIMU(s sensor.IMUSample) {
	f.advance(s.Time, s.GyroZRad)
	f.hdg.Update(s.CompassDeg, 12) // compass is weak: wide sigma
}

// OnGPS folds in a position fix.
func (f *Fuser) OnGPS(fix sensor.GPSFix) {
	f.advance(fix.Time, 0)
	f.pos.UpdatePosition(ToENU(f.origin, fix.Position), fix.AccuracyM)
	f.gpsUpdates++
}

// OnVision corrects heading (and weakly position) from recognised
// landmarks: the absolute bearing to a known POI is the estimated heading
// plus the observed relative bearing; the residual against the bearing
// predicted from the estimated position updates the heading filter with
// vision-grade (sub-degree) noise.
func (f *Fuser) OnVision(now time.Time, obs []sensor.LandmarkObservation) {
	if f.pois == nil || len(obs) == 0 {
		return
	}
	f.advance(now, 0)
	est := FromENU(f.origin, f.pos.State())
	// Position error corrupts the bearing the heading correction is derived
	// from: a landmark at distance d seen from a position posErr off appears
	// up to atan(posErr/d) away from its predicted bearing. Fold that into
	// the measurement noise, floored at 3 m because the filter's own
	// uncertainty underestimates correlated GPS bias.
	posM := math.Max(f.pos.Uncertainty(), 3)
	for _, o := range obs {
		poi, err := f.pois.Get(o.POIID)
		if err != nil {
			continue
		}
		dist := geo.DistanceMeters(est, poi.Location)
		if dist < 1 {
			continue
		}
		expected := geo.BearingDegrees(est, poi.Location)
		measuredHeading := norm360(expected - o.RelBearing)
		visSigma := 0.8 / math.Max(o.Confidence, 0.1)
		posSigma := math.Atan2(posM, dist) * 180 / math.Pi
		sigma := math.Sqrt(visSigma*visSigma + posSigma*posSigma)
		f.hdg.Update(measuredHeading, sigma)
		f.visionUpdates++
	}
}

// Pose returns the fused pose estimate.
func (f *Fuser) Pose() sensor.Pose {
	return sensor.Pose{
		Position:   FromENU(f.origin, f.pos.State()),
		HeadingDeg: f.hdg.Heading(),
		AltitudeM:  1.6,
	}
}

// Confidence returns 1-sigma position (m) and heading (deg) uncertainty.
func (f *Fuser) Confidence() (posM, headingDeg float64) {
	return f.pos.Uncertainty(), f.hdg.Sigma()
}

// UpdateCounts reports how many GPS and vision corrections have been
// applied (used by tests and ablations).
func (f *Fuser) UpdateCounts() (gps, vision int) {
	return f.gpsUpdates, f.visionUpdates
}

// FuserState is a fuser's complete mutable state, exportable so a session
// migrating between nodes carries its registration solution instead of
// re-converging from scratch. Positions are ENU meters relative to the
// fuser's origin: restore is only meaningful on a fuser anchored at the
// same origin (shards of one deployment share the world config).
type FuserState struct {
	// X and P are the position filter's state vector [e, n, ve, vn] and
	// covariance.
	X [4]float64
	P [4][4]float64
	// HeadingDeg and HeadingVar are the heading filter's estimate and
	// variance.
	HeadingDeg float64
	HeadingVar float64
	// LastNanos is the prediction clock (unix nanos); Has reports whether
	// any sample has initialised it.
	LastNanos int64
	Has       bool
	// GPSUpdates and VisionUpdates carry the correction counters.
	GPSUpdates    int
	VisionUpdates int
}

// ExportState snapshots the fuser's mutable state.
func (f *Fuser) ExportState() FuserState {
	return FuserState{
		X:             f.pos.x,
		P:             f.pos.p,
		HeadingDeg:    f.hdg.deg,
		HeadingVar:    f.hdg.v,
		LastNanos:     f.last.UnixNano(),
		Has:           f.has,
		GPSUpdates:    f.gpsUpdates,
		VisionUpdates: f.visionUpdates,
	}
}

// RestoreState overwrites the fuser's mutable state with an exported
// snapshot. Filter tuning (process noise) is construction-time config and
// is kept, not restored.
func (f *Fuser) RestoreState(st FuserState) {
	f.pos.x = st.X
	f.pos.p = st.P
	f.hdg.deg = st.HeadingDeg
	f.hdg.v = st.HeadingVar
	f.last = time.Unix(0, st.LastNanos)
	f.has = st.Has
	f.gpsUpdates = st.GPSUpdates
	f.visionUpdates = st.VisionUpdates
}

// RegError quantifies registration quality of an estimated pose against
// ground truth.
type RegError struct {
	PositionM  float64 // horizontal position error
	HeadingDeg float64 // absolute heading error
	PixelErr   float64 // approximate on-screen displacement of a centred overlay
}

// Register compares est to truth for a camera with the given horizontal FOV
// rendering to a screen screenWpx wide. The pixel error approximates how far
// a virtual object anchored at the optical axis would be drawn from its real
// counterpart.
func Register(est, truth sensor.Pose, fovDeg float64, screenWpx int) RegError {
	posErr := geo.DistanceMeters(est.Position, truth.Position)
	hdgErr := math.Abs(wrap180(est.HeadingDeg - truth.HeadingDeg))
	pxPerDeg := float64(screenWpx) / fovDeg
	// A position error shifts apparent bearings of near content; approximate
	// with content at 20 m.
	const contentDistM = 20
	posAsDeg := math.Atan2(posErr, contentDistM) * 180 / math.Pi
	return RegError{
		PositionM:  posErr,
		HeadingDeg: hdgErr,
		PixelErr:   (hdgErr + posAsDeg) * pxPerDeg,
	}
}
