// Package tracking implements AR tracking and registration: a 2D
// constant-velocity Kalman filter over GPS fixes, a heading filter fusing
// gyro integration with compass and vision landmark corrections, and
// registration-error metrics against ground truth. It substitutes for the
// vision SDKs of real AR systems while preserving their error structure:
// dead reckoning drifts, absolute fixes are noisy, and fusion beats either
// alone — which is what the paper's registration requirement rides on.
package tracking

import (
	"math"

	"arbd/internal/geo"
)

// metersPerDegLat is the local scale used for the equirectangular ENU
// projection; accurate to <0.5% over the few-km extents the platform
// simulates.
const metersPerDegLat = 111_320.0

// ENU is a local east/north coordinate in meters relative to an origin.
type ENU struct {
	E float64
	N float64
}

// ToENU projects p into meters east/north of origin.
func ToENU(origin, p geo.Point) ENU {
	return ENU{
		E: (p.Lon - origin.Lon) * metersPerDegLat * math.Cos(origin.Lat*math.Pi/180),
		N: (p.Lat - origin.Lat) * metersPerDegLat,
	}
}

// FromENU inverts ToENU.
func FromENU(origin geo.Point, e ENU) geo.Point {
	return geo.Point{
		Lat: origin.Lat + e.N/metersPerDegLat,
		Lon: origin.Lon + e.E/(metersPerDegLat*math.Cos(origin.Lat*math.Pi/180)),
	}
}

// PositionFilter is a 2D constant-velocity Kalman filter with state
// [e, n, ve, vn] and position-only measurements (GPS fixes).
type PositionFilter struct {
	x [4]float64    // state
	p [4][4]float64 // covariance
	q float64       // process noise spectral density (accel variance)
}

// NewPositionFilter returns a filter initialised at start with loose
// covariance. accelSigma is the expected acceleration magnitude (m/s²);
// pedestrians ≈ 0.5.
func NewPositionFilter(start ENU, accelSigma float64) *PositionFilter {
	if accelSigma <= 0 {
		accelSigma = 0.5
	}
	f := &PositionFilter{q: accelSigma * accelSigma}
	f.x = [4]float64{start.E, start.N, 0, 0}
	// Loose on position (σ=10 m) but tight on velocity (σ=2 m/s): a huge
	// initial velocity variance lets the first innovation kick the velocity
	// estimate by tens of m/s, which then takes many updates to bleed off.
	f.p[0][0], f.p[1][1] = 100, 100
	f.p[2][2], f.p[3][3] = 4, 4
	return f
}

// Predict advances the state by dt seconds.
func (f *PositionFilter) Predict(dt float64) {
	if dt <= 0 {
		return
	}
	// x' = F x with F = [1 0 dt 0; 0 1 0 dt; 0 0 1 0; 0 0 0 1].
	f.x[0] += f.x[2] * dt
	f.x[1] += f.x[3] * dt
	// P' = F P Fᵀ + Q (discretised white-accel model).
	var fp [4][4]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := f.p[r][c]
			if r < 2 {
				v += dt * f.p[r+2][c]
			}
			fp[r][c] = v
		}
	}
	var fpf [4][4]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := fp[r][c]
			if c < 2 {
				v += dt * fp[r][c+2]
			}
			fpf[r][c] = v
		}
	}
	dt2, dt3, dt4 := dt*dt, dt*dt*dt, dt*dt*dt*dt
	for d := 0; d < 2; d++ {
		fpf[d][d] += f.q * dt4 / 4
		fpf[d][d+2] += f.q * dt3 / 2
		fpf[d+2][d] += f.q * dt3 / 2
		fpf[d+2][d+2] += f.q * dt2
	}
	f.p = fpf
}

// UpdatePosition folds in a position measurement with the given 1-sigma
// noise in meters.
func (f *PositionFilter) UpdatePosition(z ENU, sigmaM float64) {
	if sigmaM <= 0 {
		sigmaM = 1
	}
	r := sigmaM * sigmaM
	// The E and N axes are decoupled under H = [I2 0], so update per axis.
	for d := 0; d < 2; d++ {
		zi := z.E
		if d == 1 {
			zi = z.N
		}
		s := f.p[d][d] + r
		kPos := f.p[d][d] / s
		kVel := f.p[d+2][d] / s
		innov := zi - f.x[d]
		f.x[d] += kPos * innov
		f.x[d+2] += kVel * innov
		// Joseph-free covariance update on the (pos, vel) pair.
		pPP, pPV, pVV := f.p[d][d], f.p[d][d+2], f.p[d+2][d+2]
		f.p[d][d] = (1 - kPos) * pPP
		f.p[d][d+2] = (1 - kPos) * pPV
		f.p[d+2][d] = f.p[d][d+2]
		f.p[d+2][d+2] = pVV - kVel*pPV
	}
}

// State returns the current position estimate.
func (f *PositionFilter) State() ENU { return ENU{E: f.x[0], N: f.x[1]} }

// Velocity returns the current velocity estimate in m/s.
func (f *PositionFilter) Velocity() (ve, vn float64) { return f.x[2], f.x[3] }

// Uncertainty returns the 1-sigma position uncertainty (circular
// approximation).
func (f *PositionFilter) Uncertainty() float64 {
	return math.Sqrt((f.p[0][0] + f.p[1][1]) / 2)
}

// HeadingFilter is a scalar Kalman filter over heading (degrees) that
// integrates gyro rate in Predict and corrects with absolute bearings
// (compass, vision landmarks) in Update, handling angle wrap-around.
type HeadingFilter struct {
	deg float64
	v   float64 // variance, deg²
	q   float64 // process noise per second, deg²/s
}

// NewHeadingFilter returns a filter initialised to start with high
// uncertainty.
func NewHeadingFilter(startDeg float64) *HeadingFilter {
	return &HeadingFilter{deg: norm360(startDeg), v: 180, q: 4}
}

// Predict integrates a gyro rate (rad/s) over dt seconds.
func (h *HeadingFilter) Predict(gyroZRad, dt float64) {
	if dt <= 0 {
		return
	}
	h.deg = norm360(h.deg + gyroZRad*180/math.Pi*dt)
	h.v += h.q * dt
}

// Update folds in an absolute heading measurement with 1-sigma noise in
// degrees.
func (h *HeadingFilter) Update(measuredDeg, sigmaDeg float64) {
	if sigmaDeg <= 0 {
		sigmaDeg = 1
	}
	r := sigmaDeg * sigmaDeg
	k := h.v / (h.v + r)
	h.deg = norm360(h.deg + k*wrap180(measuredDeg-h.deg))
	h.v *= 1 - k
}

// Heading returns the current estimate in [0, 360).
func (h *HeadingFilter) Heading() float64 { return h.deg }

// Sigma returns the 1-sigma heading uncertainty in degrees.
func (h *HeadingFilter) Sigma() float64 { return math.Sqrt(h.v) }

func norm360(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	return d
}

func wrap180(d float64) float64 {
	d = math.Mod(d+540, 360) - 180
	if d == -180 {
		return 180
	}
	return d
}
