package traffic

import (
	"math"
	"testing"
	"time"

	"arbd/internal/sim"
)

var t0 = sim.Epoch

func TestVehiclesStayOnStreets(t *testing.T) {
	s := NewSim(Config{Seed: 1, GridN: 5, BlockM: 100, NumVehicles: 30}, t0)
	for step := 0; step < 500; step++ {
		s.Step(200 * time.Millisecond)
		for _, v := range s.Vehicles() {
			onAvenue := math.Abs(math.Mod(v.Pos.X+50, 100)-50) < 1
			onStreet := math.Abs(math.Mod(v.Pos.Y+50, 100)-50) < 1
			if !onAvenue && !onStreet {
				t.Fatalf("vehicle %d off-street at (%.1f, %.1f), step %d", v.ID, v.Pos.X, v.Pos.Y, step)
			}
			if v.Pos.X < -1 || v.Pos.X > 401 || v.Pos.Y < -1 || v.Pos.Y > 401 {
				t.Fatalf("vehicle %d out of bounds at (%.1f, %.1f)", v.ID, v.Pos.X, v.Pos.Y)
			}
		}
	}
}

func TestVehiclesMove(t *testing.T) {
	s := NewSim(Config{Seed: 2, NumVehicles: 10}, t0)
	before := s.Vehicles()
	s.Step(2 * time.Second)
	after := s.Vehicles()
	moved := 0
	for i := range before {
		if math.Hypot(after[i].Pos.X-before[i].Pos.X, after[i].Pos.Y-before[i].Pos.Y) > 5 {
			moved++
		}
	}
	if moved < len(before)/2 {
		t.Fatalf("only %d/%d vehicles moved", moved, len(before))
	}
	if !s.Now().Equal(t0.Add(2 * time.Second)) {
		t.Fatalf("sim time = %v", s.Now())
	}
}

func TestPenetrationControlsEquipment(t *testing.T) {
	s := NewSim(Config{Seed: 3, NumVehicles: 200, Penetration: 0.5}, t0)
	equipped := 0
	for _, v := range s.Vehicles() {
		if v.Equipped {
			equipped++
		}
	}
	if equipped < 70 || equipped > 130 {
		t.Fatalf("equipped = %d/200 at 50%% penetration", equipped)
	}
}

func TestLineOfSight(t *testing.T) {
	s := NewSim(Config{Seed: 4, GridN: 5, BlockM: 100, NumVehicles: 1}, t0)
	// Same avenue (x = 100): LOS.
	if !s.LineOfSight(Vec{X: 100, Y: 10}, Vec{X: 100, Y: 350}) {
		t.Fatal("same avenue blocked")
	}
	// Same street (y = 200): LOS.
	if !s.LineOfSight(Vec{X: 20, Y: 200}, Vec{X: 380, Y: 200}) {
		t.Fatal("same street blocked")
	}
	// Different corridors: building in between.
	if s.LineOfSight(Vec{X: 100, Y: 50}, Vec{X: 200, Y: 150}) {
		t.Fatal("diagonal through block has LOS")
	}
}

func TestReceivedBeaconsRangeAndLOS(t *testing.T) {
	s := NewSim(Config{Seed: 5, GridN: 5, BlockM: 100, NumVehicles: 2, Penetration: 1}, t0)
	// Force two vehicles onto perpendicular streets near the same corner.
	s.vehicles[0].Pos = Vec{X: 100, Y: 50}
	s.vehicles[1].Pos = Vec{X: 150, Y: 100}
	los := s.ReceivedBeacons(300, false)
	if len(los[1]) != 0 || len(los[2]) != 0 {
		t.Fatalf("occluded vehicles heard each other: %v", los)
	}
	shared := s.ReceivedBeacons(300, true)
	if len(shared[1]) != 1 || len(shared[2]) != 1 {
		t.Fatalf("cloud sharing failed: %v", shared)
	}
	// Out of range even with sharing.
	s.vehicles[1].Pos = Vec{X: 100, Y: 400}
	far := s.ReceivedBeacons(200, true)
	if len(far[1]) != 0 {
		t.Fatalf("beacon beyond radio range received: %v", far)
	}
}

func TestUnequippedVehiclesSilent(t *testing.T) {
	s := NewSim(Config{Seed: 6, NumVehicles: 2, Penetration: 1}, t0)
	s.vehicles[0].Equipped = false
	s.vehicles[0].Pos = Vec{X: 0, Y: 0}
	s.vehicles[1].Pos = Vec{X: 0, Y: 50}
	rx := s.ReceivedBeacons(500, true)
	if len(rx[2]) != 0 {
		t.Fatal("unequipped vehicle transmitted")
	}
	if _, ok := rx[1]; ok {
		t.Fatal("unequipped vehicle received")
	}
}

func TestPredictConflictHeadOn(t *testing.T) {
	a := Vehicle{ID: 1, Pos: Vec{X: 0, Y: 0}, Heading: 0, SpeedMps: 10}     // north
	b := Vehicle{ID: 2, Pos: Vec{X: 0, Y: 200}, Heading: 180, SpeedMps: 10} // south, head-on
	c, ok := PredictConflict(a, b, 30*time.Second, 10)
	if !ok {
		t.Fatal("head-on collision not predicted")
	}
	// Closing at 20 m/s over 200 m: TTC = 10 s.
	if c.TTC < 9*time.Second || c.TTC > 11*time.Second {
		t.Fatalf("TTC = %v, want ~10s", c.TTC)
	}
	if c.MinSep > 1 {
		t.Fatalf("minSep = %.2f", c.MinSep)
	}
}

func TestPredictConflictCrossing(t *testing.T) {
	// Both arrive at the intersection (100, 100) at t=10s.
	a := Vehicle{ID: 1, Pos: Vec{X: 100, Y: 0}, Heading: 0, SpeedMps: 10}  // north
	b := Vehicle{ID: 2, Pos: Vec{X: 0, Y: 100}, Heading: 90, SpeedMps: 10} // east
	if _, ok := PredictConflict(a, b, 30*time.Second, 10); !ok {
		t.Fatal("crossing conflict not predicted")
	}
	// Offset arrival by 8s: no conflict at 10 m separation threshold.
	b.Pos.X = -80
	if _, ok := PredictConflict(a, b, 30*time.Second, 10); ok {
		t.Fatal("well-separated crossing flagged")
	}
}

func TestPredictConflictDiverging(t *testing.T) {
	a := Vehicle{ID: 1, Pos: Vec{X: 0, Y: 0}, Heading: 0, SpeedMps: 10}
	b := Vehicle{ID: 2, Pos: Vec{X: 0, Y: -50}, Heading: 180, SpeedMps: 10} // moving away
	if _, ok := PredictConflict(a, b, 30*time.Second, 10); ok {
		t.Fatal("diverging vehicles flagged")
	}
}

func TestPredictConflictHorizonBound(t *testing.T) {
	a := Vehicle{ID: 1, Pos: Vec{X: 0, Y: 0}, Heading: 0, SpeedMps: 1}
	b := Vehicle{ID: 2, Pos: Vec{X: 0, Y: 1000}, Heading: 180, SpeedMps: 1}
	// Collision at t=500s, beyond a 10s horizon: separation at horizon is
	// still huge, so no warning.
	if _, ok := PredictConflict(a, b, 10*time.Second, 10); ok {
		t.Fatal("conflict beyond horizon flagged")
	}
}

func TestWarningsSortedByTTC(t *testing.T) {
	self := Vehicle{ID: 1, Pos: Vec{X: 0, Y: 0}, Heading: 0, SpeedMps: 10}
	beacons := []Beacon{
		{From: 2, Pos: Vec{X: 0, Y: 400}, Heading: 180, SpeedMps: 10}, // TTC 20s
		{From: 3, Pos: Vec{X: 0, Y: 100}, Heading: 180, SpeedMps: 10}, // TTC 5s
	}
	ws := WarningsFromBeacons(self, beacons, 60*time.Second, 10)
	if len(ws) != 2 || ws[0].B != 3 {
		t.Fatalf("warnings = %v", ws)
	}
}

func TestSharingImprovesDetection(t *testing.T) {
	// Averaged over steps, cloud-shared beacons must detect at least as many
	// oracle conflicts as LOS-only, and strictly more somewhere.
	s := NewSim(Config{Seed: 8, GridN: 6, BlockM: 120, NumVehicles: 60, Penetration: 1}, t0)
	var losSum, sharedSum, truthSum int
	for step := 0; step < 120; step++ {
		s.Step(500 * time.Millisecond)
		los := s.MeasureDetection(250, false, 8*time.Second, 12)
		shared := s.MeasureDetection(250, true, 8*time.Second, 12)
		losSum += los.DetectedPairs
		sharedSum += shared.DetectedPairs
		truthSum += shared.TruthPairs
	}
	if truthSum == 0 {
		t.Fatal("no ground-truth conflicts generated")
	}
	if sharedSum < losSum {
		t.Fatalf("sharing detected %d < LOS %d", sharedSum, losSum)
	}
	if sharedSum == losSum {
		t.Fatalf("sharing never beat LOS (%d each over %d truths)", sharedSum, truthSum)
	}
}

func TestPenetrationReducesDetection(t *testing.T) {
	full := NewSim(Config{Seed: 9, NumVehicles: 60, Penetration: 1}, t0)
	sparse := NewSim(Config{Seed: 9, NumVehicles: 60, Penetration: 0.3}, t0)
	var fullDet, sparseDet float64
	var fullTruth, sparseTruth float64
	for step := 0; step < 100; step++ {
		full.Step(500 * time.Millisecond)
		sparse.Step(500 * time.Millisecond)
		fd := full.MeasureDetection(250, true, 8*time.Second, 12)
		sd := sparse.MeasureDetection(250, true, 8*time.Second, 12)
		fullDet += float64(fd.DetectedPairs)
		fullTruth += float64(fd.TruthPairs)
		sparseDet += float64(sd.DetectedPairs)
		sparseTruth += float64(sd.TruthPairs)
	}
	if fullTruth == 0 || sparseTruth == 0 {
		t.Fatal("no conflicts")
	}
	fullRecall := fullDet / fullTruth
	sparseRecall := sparseDet / sparseTruth
	if sparseRecall >= fullRecall {
		t.Fatalf("30%% penetration recall %.2f not below 100%% recall %.2f", sparseRecall, fullRecall)
	}
}

func TestSimDeterministic(t *testing.T) {
	a := NewSim(Config{Seed: 10, NumVehicles: 20}, t0)
	b := NewSim(Config{Seed: 10, NumVehicles: 20}, t0)
	for i := 0; i < 50; i++ {
		a.Step(time.Second)
		b.Step(time.Second)
	}
	va, vb := a.Vehicles(), b.Vehicles()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("sims diverged at vehicle %d", i)
		}
	}
}
