// Package traffic implements the §3.4 public-services scenario: a VANET
// simulation on a Manhattan road grid with beacon exchange, line-of-sight
// radio occlusion by city blocks, cloud-relayed ("x-ray vision") beacon
// sharing, and constant-velocity conflict prediction. Experiment E9
// measures warning recall and lead time as beacon penetration and sharing
// vary — quantifying the paper's see-through-the-building claim.
package traffic

import (
	"math"
	"sort"
	"time"

	"arbd/internal/sim"
)

// Vec is a position or velocity in the local metric frame (meters east,
// meters north of the grid origin).
type Vec struct {
	X float64
	Y float64
}

// Vehicle is one simulated car on the grid.
type Vehicle struct {
	ID       uint64
	Pos      Vec
	Heading  float64 // degrees: 0=N, 90=E, 180=S, 270=W (grid-aligned)
	SpeedMps float64
	Equipped bool // carries a V2X beacon radio
}

// Velocity returns the vehicle's velocity vector.
func (v Vehicle) Velocity() Vec {
	rad := v.Heading * math.Pi / 180
	return Vec{X: math.Sin(rad) * v.SpeedMps, Y: math.Cos(rad) * v.SpeedMps}
}

// Beacon is one broadcast state report.
type Beacon struct {
	From     uint64
	Pos      Vec
	Heading  float64
	SpeedMps float64
	At       time.Time
}

// Config parameterises the simulation.
type Config struct {
	Seed        int64
	GridN       int     // intersections per side (default 6)
	BlockM      float64 // block edge length (default 120)
	NumVehicles int     // default 40
	Penetration float64 // fraction of vehicles with radios (default 1)
	SpeedMps    float64 // mean speed (default 11 ≈ 40 km/h)
}

// Sim is a stepped VANET simulation.
type Sim struct {
	cfg      Config
	rng      *sim.Rand
	vehicles []*Vehicle
	now      time.Time
}

// NewSim builds a simulation with vehicles placed on random streets.
func NewSim(cfg Config, start time.Time) *Sim {
	if cfg.GridN <= 1 {
		cfg.GridN = 6
	}
	if cfg.BlockM <= 0 {
		cfg.BlockM = 120
	}
	if cfg.NumVehicles <= 0 {
		cfg.NumVehicles = 40
	}
	if cfg.Penetration <= 0 || cfg.Penetration > 1 {
		cfg.Penetration = 1
	}
	if cfg.SpeedMps <= 0 {
		cfg.SpeedMps = 11
	}
	s := &Sim{cfg: cfg, rng: sim.NewRand(cfg.Seed).Child("traffic"), now: start}
	extent := float64(cfg.GridN-1) * cfg.BlockM
	for i := 0; i < cfg.NumVehicles; i++ {
		v := &Vehicle{
			ID:       uint64(i + 1),
			SpeedMps: s.rng.Jitter(cfg.SpeedMps, 0.3),
			Equipped: s.rng.Bool(cfg.Penetration),
		}
		// Place on a random street: either a N-S avenue (x fixed) or an E-W
		// street (y fixed).
		if s.rng.Bool(0.5) {
			v.Pos = Vec{X: float64(s.rng.Intn(cfg.GridN)) * cfg.BlockM, Y: s.rng.Float64() * extent}
			if s.rng.Bool(0.5) {
				v.Heading = 0
			} else {
				v.Heading = 180
			}
		} else {
			v.Pos = Vec{X: s.rng.Float64() * extent, Y: float64(s.rng.Intn(cfg.GridN)) * cfg.BlockM}
			if s.rng.Bool(0.5) {
				v.Heading = 90
			} else {
				v.Heading = 270
			}
		}
		s.vehicles = append(s.vehicles, v)
	}
	return s
}

// Now returns the simulation time.
func (s *Sim) Now() time.Time { return s.now }

// Vehicles returns a snapshot of vehicle states.
func (s *Sim) Vehicles() []Vehicle {
	out := make([]Vehicle, len(s.vehicles))
	for i, v := range s.vehicles {
		out[i] = *v
	}
	return out
}

// Step advances every vehicle by dt. At intersections vehicles turn with
// probability 0.4; at the grid boundary they turn back inward.
func (s *Sim) Step(dt time.Duration) {
	secs := dt.Seconds()
	extent := float64(s.cfg.GridN-1) * s.cfg.BlockM
	for _, v := range s.vehicles {
		dist := v.SpeedMps * secs
		// Distance to next intersection along the heading.
		var along, coord float64
		switch v.Heading {
		case 0:
			along, coord = v.Pos.Y, v.Pos.X
		case 180:
			along, coord = extent-v.Pos.Y, v.Pos.X
		case 90:
			along, coord = v.Pos.X, v.Pos.Y
		default:
			along, coord = extent-v.Pos.X, v.Pos.Y
		}
		_ = coord
		next := s.cfg.BlockM - math.Mod(along, s.cfg.BlockM)
		if next <= dist+0.01 {
			// Cross the intersection, maybe turning.
			s.advance(v, next)
			if s.rng.Bool(0.4) {
				s.turn(v)
			}
			s.advance(v, dist-next)
		} else {
			s.advance(v, dist)
		}
		s.clampInward(v, extent)
	}
	s.now = s.now.Add(dt)
}

func (s *Sim) advance(v *Vehicle, dist float64) {
	vel := v.Velocity()
	if v.SpeedMps > 0 {
		v.Pos.X += vel.X / v.SpeedMps * dist
		v.Pos.Y += vel.Y / v.SpeedMps * dist
	}
}

func (s *Sim) turn(v *Vehicle) {
	// Snap to the intersection before turning so the vehicle stays on
	// streets.
	v.Pos.X = math.Round(v.Pos.X/s.cfg.BlockM) * s.cfg.BlockM
	v.Pos.Y = math.Round(v.Pos.Y/s.cfg.BlockM) * s.cfg.BlockM
	if s.rng.Bool(0.5) {
		v.Heading = math.Mod(v.Heading+90, 360)
	} else {
		v.Heading = math.Mod(v.Heading+270, 360)
	}
}

func (s *Sim) clampInward(v *Vehicle, extent float64) {
	turned := false
	if v.Pos.X < 0 {
		v.Pos.X, turned = 0, true
	}
	if v.Pos.X > extent {
		v.Pos.X, turned = extent, true
	}
	if v.Pos.Y < 0 {
		v.Pos.Y, turned = 0, true
	}
	if v.Pos.Y > extent {
		v.Pos.Y, turned = extent, true
	}
	if turned {
		v.Heading = math.Mod(v.Heading+180, 360)
	}
}

// LineOfSight reports whether two positions can see each other on the grid:
// true when they share a street corridor (within half a road width of the
// same avenue/street) — otherwise a building block stands between them.
func (s *Sim) LineOfSight(a, b Vec) bool {
	const roadHalfWidth = 8.0
	onSameAvenue := math.Abs(a.X-b.X) < roadHalfWidth &&
		math.Abs(math.Mod(a.X+s.cfg.BlockM/2, s.cfg.BlockM)-s.cfg.BlockM/2) < roadHalfWidth
	onSameStreet := math.Abs(a.Y-b.Y) < roadHalfWidth &&
		math.Abs(math.Mod(a.Y+s.cfg.BlockM/2, s.cfg.BlockM)-s.cfg.BlockM/2) < roadHalfWidth
	return onSameAvenue || onSameStreet
}

// ReceivedBeacons returns, for each equipped vehicle, the beacons it hears:
// all equipped vehicles within radioRangeM, filtered by line of sight unless
// shared (cloud relay / "x-ray vision") is enabled.
func (s *Sim) ReceivedBeacons(radioRangeM float64, shared bool) map[uint64][]Beacon {
	out := make(map[uint64][]Beacon)
	for _, rx := range s.vehicles {
		if !rx.Equipped {
			continue
		}
		for _, tx := range s.vehicles {
			if tx.ID == rx.ID || !tx.Equipped {
				continue
			}
			d := math.Hypot(tx.Pos.X-rx.Pos.X, tx.Pos.Y-rx.Pos.Y)
			if d > radioRangeM {
				continue
			}
			if !shared && !s.LineOfSight(rx.Pos, tx.Pos) {
				continue
			}
			out[rx.ID] = append(out[rx.ID], Beacon{
				From: tx.ID, Pos: tx.Pos, Heading: tx.Heading,
				SpeedMps: tx.SpeedMps, At: s.now,
			})
		}
	}
	return out
}

// Conflict is a predicted dangerous encounter between two vehicles.
type Conflict struct {
	A, B   uint64
	TTC    time.Duration // time to closest approach
	MinSep float64       // predicted separation at closest approach, m
}

// PredictConflict projects both vehicles at constant velocity and returns
// the conflict if their closest approach within horizon is under minSepM.
func PredictConflict(a, b Vehicle, horizon time.Duration, minSepM float64) (Conflict, bool) {
	dp := Vec{X: b.Pos.X - a.Pos.X, Y: b.Pos.Y - a.Pos.Y}
	va, vb := a.Velocity(), b.Velocity()
	dv := Vec{X: vb.X - va.X, Y: vb.Y - va.Y}
	dv2 := dv.X*dv.X + dv.Y*dv.Y
	var tStar float64
	if dv2 > 1e-9 {
		tStar = -(dp.X*dv.X + dp.Y*dv.Y) / dv2
	}
	if tStar < 0 {
		tStar = 0
	}
	if h := horizon.Seconds(); tStar > h {
		tStar = h
	}
	cx := dp.X + dv.X*tStar
	cy := dp.Y + dv.Y*tStar
	sep := math.Hypot(cx, cy)
	if sep >= minSepM {
		return Conflict{}, false
	}
	return Conflict{
		A: a.ID, B: b.ID,
		TTC:    time.Duration(tStar * float64(time.Second)),
		MinSep: sep,
	}, true
}

// WarningsFromBeacons computes the conflicts an equipped vehicle can warn
// about, given the beacons it received.
func WarningsFromBeacons(self Vehicle, beacons []Beacon, horizon time.Duration, minSepM float64) []Conflict {
	var out []Conflict
	for _, b := range beacons {
		other := Vehicle{ID: b.From, Pos: b.Pos, Heading: b.Heading, SpeedMps: b.SpeedMps}
		if c, ok := PredictConflict(self, other, horizon, minSepM); ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TTC < out[j].TTC })
	return out
}

// GroundTruthConflicts computes conflicts with perfect information about
// every vehicle (equipped or not) — the oracle E9 measures recall against.
func (s *Sim) GroundTruthConflicts(horizon time.Duration, minSepM float64) []Conflict {
	var out []Conflict
	for i := 0; i < len(s.vehicles); i++ {
		for j := i + 1; j < len(s.vehicles); j++ {
			if c, ok := PredictConflict(*s.vehicles[i], *s.vehicles[j], horizon, minSepM); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// DetectionStats compares beacon-based warnings against ground truth at one
// simulation instant.
type DetectionStats struct {
	TruthPairs    int // conflicts the oracle sees
	DetectedPairs int // of those, pairs where at least one party was warned
	MeanTTC       time.Duration
}

// MeasureDetection computes detection stats for the current instant.
func (s *Sim) MeasureDetection(radioRangeM float64, shared bool, horizon time.Duration, minSepM float64) DetectionStats {
	truth := s.GroundTruthConflicts(horizon, minSepM)
	var st DetectionStats
	st.TruthPairs = len(truth)
	if len(truth) == 0 {
		return st
	}
	inbox := s.ReceivedBeacons(radioRangeM, shared)
	byID := make(map[uint64]Vehicle, len(s.vehicles))
	for _, v := range s.vehicles {
		byID[v.ID] = *v
	}
	var ttcSum time.Duration
	for _, c := range truth {
		detected := false
		for _, pair := range [2][2]uint64{{c.A, c.B}, {c.B, c.A}} {
			self := byID[pair[0]]
			if !self.Equipped {
				continue
			}
			for _, w := range WarningsFromBeacons(self, inbox[self.ID], horizon, minSepM) {
				if w.B == pair[1] {
					detected = true
					break
				}
			}
			if detected {
				break
			}
		}
		if detected {
			st.DetectedPairs++
			ttcSum += c.TTC
		}
	}
	if st.DetectedPairs > 0 {
		st.MeanTTC = ttcSum / time.Duration(st.DetectedPairs)
	}
	return st
}
