package mq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"arbd/internal/sim"
)

func newTestBroker(t *testing.T, partitions int) *Broker {
	t.Helper()
	b := NewBroker(WithClock(sim.NewVirtualClock(time.Time{})))
	if err := b.CreateTopic("events", TopicConfig{Partitions: partitions}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateTopicDuplicate(t *testing.T) {
	b := newTestBroker(t, 1)
	if err := b.CreateTopic("events", TopicConfig{}); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("err = %v, want ErrTopicExists", err)
	}
}

func TestProduceToMissingTopic(t *testing.T) {
	b := NewBroker()
	if _, _, err := b.Produce("nope", nil, []byte("x")); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("err = %v, want ErrNoTopic", err)
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := newTestBroker(t, 1)
	for i := 0; i < 10; i++ {
		if _, _, err := b.Produce("events", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := b.Fetch("events", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("fetched %d, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Offset != int64(i) || r.Value[0] != byte(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestOffsetsMonotonicPerPartition(t *testing.T) {
	b := newTestBroker(t, 4)
	seen := make(map[int]int64)
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%d", i%17))
		pi, off, err := b.Produce("events", key, []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[pi]; ok && off != prev+1 {
			t.Fatalf("partition %d offset jumped %d -> %d", pi, prev, off)
		}
		seen[pi] = off
	}
}

func TestKeyRoutingIsStable(t *testing.T) {
	if err := quick.Check(func(key []byte) bool {
		return PartitionFor(key, 8) == PartitionFor(key, 8)
	}, nil); err != nil {
		t.Fatal(err)
	}
	if PartitionFor([]byte("anything"), 1) != 0 {
		t.Fatal("single partition must route to 0")
	}
}

func TestKeyRoutingSpreads(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 800; i++ {
		counts[PartitionFor([]byte(fmt.Sprintf("key-%d", i)), 8)]++
	}
	for pi, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d never used: %v", pi, counts)
		}
	}
}

func TestKeyedTopicRejectsEmptyKey(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("k", TopicConfig{Keyed: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce("k", nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("err = %v, want ErrEmptyKey", err)
	}
	if _, err := b.ProduceBatch("k", nil, [][]byte{[]byte("v")}); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("batch err = %v, want ErrEmptyKey", err)
	}
}

func TestFetchBadPartition(t *testing.T) {
	b := newTestBroker(t, 2)
	if _, err := b.Fetch("events", 5, 0, 10); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v, want ErrBadPartition", err)
	}
	if _, err := b.Fetch("events", -1, 0, 10); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("err = %v, want ErrBadPartition", err)
	}
}

func TestFetchAtHeadReturnsEmpty(t *testing.T) {
	b := newTestBroker(t, 1)
	_, _, _ = b.Produce("events", nil, []byte("x"))
	recs, err := b.Fetch("events", 0, 1, 10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("fetch at head = %v, %v", recs, err)
	}
}

func TestSegmentBoundaries(t *testing.T) {
	b := newTestBroker(t, 1)
	total := segmentSize*2 + segmentSize/2
	for i := 0; i < total; i++ {
		if _, _, err := b.Produce("events", nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Read across a segment boundary.
	recs, err := b.Fetch("events", 0, segmentSize-2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Offset != segmentSize-2 || recs[4].Offset != segmentSize+2 {
		t.Fatalf("cross-segment read wrong: %v..%v (%d recs)", recs[0].Offset, recs[len(recs)-1].Offset, len(recs))
	}
	oldest, newest, err := b.Offsets("events", 0)
	if err != nil || oldest != 0 || newest != int64(total) {
		t.Fatalf("offsets = %d..%d, %v", oldest, newest, err)
	}
}

func TestRetentionTruncatesOldSegments(t *testing.T) {
	b := NewBroker(WithClock(sim.NewVirtualClock(time.Time{})))
	// Each record costs ~33 bytes (1 value byte + 32 overhead); budget for
	// roughly two segments.
	err := b.CreateTopic("small", TopicConfig{Partitions: 1, RetentionBytes: 33 * segmentSize * 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < segmentSize*5; i++ {
		if _, _, err := b.Produce("small", nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	oldest, newest, err := b.Offsets("small", 0)
	if err != nil {
		t.Fatal(err)
	}
	if oldest == 0 {
		t.Fatal("retention never truncated")
	}
	if newest != segmentSize*5 {
		t.Fatalf("newest = %d", newest)
	}
	if _, err := b.Fetch("small", 0, 0, 1); !errors.Is(err, ErrOffsetOutOfLog) {
		t.Fatalf("fetch below horizon err = %v, want ErrOffsetOutOfLog", err)
	}
}

func TestGroupPollAndCommit(t *testing.T) {
	b := newTestBroker(t, 2)
	for i := 0; i < 20; i++ {
		_, _, _ = b.Produce("events", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	g, err := b.NewGroup("events")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20 {
		t.Fatalf("polled %d, want 20", len(recs))
	}
	// Without commit, poll redelivers (at-least-once).
	again, _ := g.Poll(100)
	if len(again) != 20 {
		t.Fatalf("redelivery polled %d, want 20", len(again))
	}
	for _, r := range recs {
		g.Commit(r.Partition, r.Offset+1)
	}
	after, _ := g.Poll(100)
	if len(after) != 0 {
		t.Fatalf("after commit polled %d, want 0", len(after))
	}
	lag, err := b.Lag("events", g)
	if err != nil || lag != 0 {
		t.Fatalf("lag = %d, %v", lag, err)
	}
}

func TestGroupCommitOnlyForward(t *testing.T) {
	b := newTestBroker(t, 1)
	g, _ := b.NewGroup("events")
	g.Commit(0, 10)
	g.Commit(0, 5)
	if got := g.Committed(0); got != 10 {
		t.Fatalf("Committed = %d, want 10", got)
	}
}

func TestPollWaitWakesOnProduce(t *testing.T) {
	b := newTestBroker(t, 1)
	g, _ := b.NewGroup("events")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	done := make(chan []Record, 1)
	go func() {
		recs, err := g.PollWait(ctx, 10)
		if err != nil {
			t.Errorf("PollWait: %v", err)
		}
		done <- recs
	}()
	time.Sleep(10 * time.Millisecond) // let the poller block
	if _, _, err := b.Produce("events", nil, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case recs := <-done:
		if len(recs) != 1 || string(recs[0].Value) != "wake" {
			t.Fatalf("got %v", recs)
		}
	case <-ctx.Done():
		t.Fatal("PollWait never woke")
	}
}

func TestPollWaitHonoursContext(t *testing.T) {
	b := newTestBroker(t, 1)
	g, _ := b.NewGroup("events")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.PollWait(ctx, 10); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestConsumeProcessesAndCommits(t *testing.T) {
	b := newTestBroker(t, 2)
	g, _ := b.NewGroup("events")
	const total = 50
	for i := 0; i < total; i++ {
		_, _, _ = b.Produce("events", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	got := 0
	go func() {
		_ = g.Consume(ctx, 7, func(recs []Record) error {
			mu.Lock()
			got += len(recs)
			if got >= total {
				cancel()
			}
			mu.Unlock()
			return nil
		})
	}()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("consume never finished")
	}
	mu.Lock()
	defer mu.Unlock()
	if got != total {
		t.Fatalf("consumed %d, want %d", got, total)
	}
}

func TestConsumeStopsOnHandlerError(t *testing.T) {
	b := newTestBroker(t, 1)
	g, _ := b.NewGroup("events")
	_, _, _ = b.Produce("events", nil, []byte("x"))
	sentinel := errors.New("boom")
	err := g.Consume(context.Background(), 10, func([]Record) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Batch was not committed.
	if recs, _ := g.Poll(10); len(recs) != 1 {
		t.Fatalf("failed batch was committed; polled %d", len(recs))
	}
}

func TestBrokerCloseReleasesWaiters(t *testing.T) {
	b := newTestBroker(t, 1)
	g, _ := b.NewGroup("events")
	errCh := make(chan error, 1)
	go func() {
		_, err := g.PollWait(context.Background(), 1)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PollWait not released by Close")
	}
	if _, _, err := b.Produce("events", nil, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("produce after close err = %v", err)
	}
}

func TestGroupSkipsTruncatedRange(t *testing.T) {
	b := NewBroker(WithClock(sim.NewVirtualClock(time.Time{})))
	_ = b.CreateTopic("small", TopicConfig{Partitions: 1, RetentionBytes: 33 * segmentSize})
	g, _ := b.NewGroup("small")
	for i := 0; i < segmentSize*4; i++ {
		_, _, _ = b.Produce("small", nil, []byte("x"))
	}
	recs, err := g.Poll(10)
	if err != nil {
		t.Fatalf("poll after truncation: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("poll returned nothing after truncation")
	}
	oldest, _, _ := b.Offsets("small", 0)
	if recs[0].Offset != oldest {
		t.Fatalf("poll did not resume at horizon: %d vs %d", recs[0].Offset, oldest)
	}
}

func TestProduceBatch(t *testing.T) {
	b := newTestBroker(t, 1)
	first, err := b.ProduceBatch("events", []byte("k"), [][]byte{[]byte("a"), []byte("b"), []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first offset = %d", first)
	}
	recs, _ := b.Fetch("events", 0, 0, 10)
	if len(recs) != 3 {
		t.Fatalf("fetched %d", len(recs))
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := newTestBroker(t, 4)
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				key := []byte(fmt.Sprintf("p%d-%d", p, i))
				if _, _, err := b.Produce("events", key, []byte("v")); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	g, _ := b.NewGroup("events")
	total := 0
	for {
		recs, err := g.Poll(128)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		total += len(recs)
		for _, r := range recs {
			g.Commit(r.Partition, r.Offset+1)
		}
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
}

func TestRecordsAreCopies(t *testing.T) {
	b := newTestBroker(t, 1)
	val := []byte("mutable")
	_, _, _ = b.Produce("events", nil, val)
	val[0] = 'X'
	recs, _ := b.Fetch("events", 0, 0, 1)
	if string(recs[0].Value) != "mutable" {
		t.Fatalf("broker aliased caller's buffer: %q", recs[0].Value)
	}
}

// keyForPartition finds a produce key that routes to the wanted partition.
func keyForPartition(t *testing.T, want, partitions int) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if PartitionFor(k, partitions) == want {
			return k
		}
	}
	t.Fatalf("no key found for partition %d/%d", want, partitions)
	return nil
}

// TestPollRotatesStartPartition pins the round-robin cursor: before the fix
// Poll always scanned from partition 0 and stopped at max records, so a hot
// partition 0 under sustained production starved partitions 1..N-1
// indefinitely — their records were never delivered and their lag never
// drained. With the rotating start, a capacity-limited consumer keeping pace
// with a hot partition still drains the quiet ones.
func TestPollRotatesStartPartition(t *testing.T) {
	b := newTestBroker(t, 2)
	hot := keyForPartition(t, 0, 2)
	quiet := keyForPartition(t, 1, 2)

	// Backlog: a deep hot partition plus a few quiet records behind it.
	for i := 0; i < 50; i++ {
		if _, _, err := b.Produce("events", hot, []byte("h")); err != nil {
			t.Fatal(err)
		}
	}
	const quietRecords = 3
	for i := 0; i < quietRecords; i++ {
		if _, _, err := b.Produce("events", quiet, []byte("q")); err != nil {
			t.Fatal(err)
		}
	}

	g, err := b.NewGroup("events")
	if err != nil {
		t.Fatal(err)
	}
	// Sustained load: every consumed record is replaced by a new hot one, so
	// partition 0 always has a fresh uncommitted record. A fixed scan start
	// would return hot records forever.
	seenQuiet := 0
	for i := 0; i < 40 && seenQuiet < quietRecords; i++ {
		recs, err := g.Poll(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 {
			t.Fatalf("poll %d returned %d records, want 1", i, len(recs))
		}
		r := recs[0]
		if r.Partition == 1 {
			seenQuiet++
		}
		g.Commit(r.Partition, r.Offset+1)
		if _, _, err := b.Produce("events", hot, []byte("h")); err != nil {
			t.Fatal(err)
		}
	}
	if seenQuiet != quietRecords {
		t.Fatalf("quiet partition starved: delivered %d of %d records", seenQuiet, quietRecords)
	}
	// The quiet partition's lag is fully drained.
	oldest, newest, err := b.Offsets("events", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Committed(1); got != newest || oldest > got {
		t.Fatalf("quiet partition lag not drained: committed %d, head %d", got, newest)
	}
}
