package mq

import (
	"context"
	"sync"
)

// Group tracks committed offsets per partition for one consumer group on one
// topic, giving at-least-once delivery: a record is redelivered until its
// offset is committed. The group holds a resolved Topic handle, so polling
// never pays the per-call topic-map lookup.
type Group struct {
	tp *Topic

	mu        sync.Mutex
	committed []int64
	next      int // Poll's round-robin starting partition
}

// NewGroup returns a consumer group positioned at the oldest retained offset
// of every partition.
func (b *Broker) NewGroup(topicName string) (*Group, error) {
	tp, err := b.Topic(topicName)
	if err != nil {
		return nil, err
	}
	g := &Group{tp: tp, committed: make([]int64, len(tp.t.parts))}
	for pi := range g.committed {
		g.committed[pi] = tp.t.parts[pi].oldest()
	}
	return g, nil
}

// Committed returns the committed offset for a partition (records below it
// are consumed).
func (g *Group) Committed(partitionIdx int) int64 {
	if partitionIdx < 0 || partitionIdx >= len(g.committed) {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.committed[partitionIdx]
}

// Commit marks all records below offset in the partition as consumed.
// Offsets only move forward.
func (g *Group) Commit(partitionIdx int, offset int64) {
	if partitionIdx < 0 || partitionIdx >= len(g.committed) {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if offset > g.committed[partitionIdx] {
		g.committed[partitionIdx] = offset
	}
}

// Lag returns the total number of records between this group's committed
// offsets and the topic head across all partitions — the backlog signal
// lag-aware admission control watches.
func (g *Group) Lag() (int64, error) {
	if g.tp.b.closed.Load() {
		return 0, ErrClosed
	}
	var lag int64
	for pi := range g.tp.t.parts {
		lag += g.tp.t.parts[pi].newest() - g.Committed(pi)
	}
	return lag, nil
}

// Poll fetches up to max uncommitted records across all partitions, without
// committing them. It returns nil when fully caught up.
//
// The scan's starting partition rotates across calls: a fixed start at
// partition 0 would let a hot partition fill every batch and starve
// partitions 1..N-1 indefinitely under sustained load, so their lag never
// drains and the Lag()-driven admission signal is skewed.
func (g *Group) Poll(max int) ([]Record, error) {
	return g.PollInto(nil, max)
}

// PollInto is Poll appending into dst — the reuse variant for consumer loops
// that would otherwise allocate a fresh []Record per poll. Appended records'
// Key/Value bytes alias the log's segment arenas and are read-only.
func (g *Group) PollInto(dst []Record, max int) ([]Record, error) {
	if g.tp.b.closed.Load() {
		return dst, ErrClosed
	}
	n := len(g.committed)
	g.mu.Lock()
	start := g.next % n
	g.next = (start + 1) % n
	g.mu.Unlock()
	base := len(dst)
	for k := 0; k < n && len(dst)-base < max; k++ {
		pi := (start + k) % n
		from := g.Committed(pi)
		// Skip forward if retention truncated below our committed position.
		oldest, _, err := g.tp.Offsets(pi)
		if err != nil {
			return dst, err
		}
		if from < oldest {
			from = oldest
			g.Commit(pi, oldest)
		}
		dst, err = g.tp.FetchInto(dst, pi, from, max-(len(dst)-base))
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// PollWait behaves like Poll but blocks until at least one record is
// available, the context is cancelled, or the broker closes.
func (g *Group) PollWait(ctx context.Context, max int) ([]Record, error) {
	return g.PollWaitInto(ctx, nil, max)
}

// PollWaitInto is PollWait appending into dst.
func (g *Group) PollWaitInto(ctx context.Context, dst []Record, max int) ([]Record, error) {
	base := len(dst)
	for {
		// Subscribe before polling so a produce between poll and wait is not
		// lost.
		ch, err := g.tp.WaitProduce()
		if err != nil {
			return dst, err
		}
		dst, err = g.PollInto(dst, max)
		if err != nil || len(dst) > base {
			return dst, err
		}
		select {
		case <-ctx.Done():
			return dst, ctx.Err()
		case <-ch:
		}
	}
}

// Consume runs fn over batches of records until ctx is cancelled or the
// broker closes, committing after each successful batch. If fn returns an
// error the batch is not committed and Consume returns the error.
//
// The batch slice is reused across iterations: fn must finish with it (or
// copy what it keeps) before returning.
func (g *Group) Consume(ctx context.Context, batch int, fn func([]Record) error) error {
	buf := make([]Record, 0, batch)
	for {
		recs, err := g.PollWaitInto(ctx, buf[:0], batch)
		if err != nil {
			return err
		}
		buf = recs
		if len(recs) == 0 {
			continue
		}
		if err := fn(recs); err != nil {
			return err
		}
		for i := range recs {
			g.Commit(recs[i].Partition, recs[i].Offset+1)
		}
	}
}
