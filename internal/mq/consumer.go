package mq

import (
	"context"
	"sync"
)

// Group tracks committed offsets per partition for one consumer group on one
// topic, giving at-least-once delivery: a record is redelivered until its
// offset is committed.
type Group struct {
	broker *Broker
	topic  string

	mu        sync.Mutex
	committed map[int]int64
	next      int // Poll's round-robin starting partition
}

// NewGroup returns a consumer group positioned at the oldest retained offset
// of every partition.
func (b *Broker) NewGroup(topicName string) (*Group, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	g := &Group{broker: b, topic: topicName, committed: make(map[int]int64, len(t.parts))}
	for pi := range t.parts {
		g.committed[pi] = t.parts[pi].oldest()
	}
	return g, nil
}

// Committed returns the committed offset for a partition (records below it
// are consumed).
func (g *Group) Committed(partitionIdx int) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.committed[partitionIdx]
}

// Commit marks all records below offset in the partition as consumed.
// Offsets only move forward.
func (g *Group) Commit(partitionIdx int, offset int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if offset > g.committed[partitionIdx] {
		g.committed[partitionIdx] = offset
	}
}

// Lag returns the total number of records between this group's committed
// offsets and the topic head across all partitions — the backlog signal
// lag-aware admission control watches.
func (g *Group) Lag() (int64, error) {
	return g.broker.Lag(g.topic, g)
}

// Poll fetches up to max uncommitted records across all partitions, without
// committing them. It returns nil when fully caught up.
//
// The scan's starting partition rotates across calls: a fixed start at
// partition 0 would let a hot partition fill every batch and starve
// partitions 1..N-1 indefinitely under sustained load, so their lag never
// drains and the Lag()-driven admission signal is skewed.
func (g *Group) Poll(max int) ([]Record, error) {
	n, err := g.broker.Partitions(g.topic)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	start := g.next % n
	g.next = (start + 1) % n
	g.mu.Unlock()
	var out []Record
	for k := 0; k < n && len(out) < max; k++ {
		pi := (start + k) % n
		from := g.Committed(pi)
		// Skip forward if retention truncated below our committed position.
		oldest, _, err := g.broker.Offsets(g.topic, pi)
		if err != nil {
			return nil, err
		}
		if from < oldest {
			from = oldest
			g.Commit(pi, oldest)
		}
		recs, err := g.broker.Fetch(g.topic, pi, from, max-len(out))
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// PollWait behaves like Poll but blocks until at least one record is
// available, the context is cancelled, or the broker closes.
func (g *Group) PollWait(ctx context.Context, max int) ([]Record, error) {
	for {
		// Subscribe before polling so a produce between poll and wait is not
		// lost.
		ch, err := g.broker.WaitProduce(g.topic)
		if err != nil {
			return nil, err
		}
		recs, err := g.Poll(max)
		if err != nil || len(recs) > 0 {
			return recs, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
		}
	}
}

// Consume runs fn over batches of records until ctx is cancelled or the
// broker closes, committing after each successful batch. If fn returns an
// error the batch is not committed and Consume returns the error.
func (g *Group) Consume(ctx context.Context, batch int, fn func([]Record) error) error {
	for {
		recs, err := g.PollWait(ctx, batch)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			continue
		}
		if err := fn(recs); err != nil {
			return err
		}
		for _, r := range recs {
			g.Commit(r.Partition, r.Offset+1)
		}
	}
}
