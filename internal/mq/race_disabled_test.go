//go:build !race

package mq

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so steady-state-allocs tests skip under -race.
const raceEnabled = false
