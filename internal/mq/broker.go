package mq

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"arbd/internal/metrics"
	"arbd/internal/sim"
)

// Broker owns topics and serves producers and consumers. It is safe for
// concurrent use.
type Broker struct {
	clock sim.Clock
	reg   *metrics.Registry

	mu     sync.RWMutex
	topics map[string]*topic
	// closed is also readable without b.mu so Topic handles and consumer
	// groups — which skip the topic map entirely — can fail fast after Close.
	closed atomic.Bool
}

// topic holds a topic's partitions plus everything the produce/fetch hot
// paths would otherwise resolve per call: the produced/fetched counters are
// interned once at CreateTopic (a per-call Registry.Counter lookup costs a
// string concat allocation plus a registry mutex acquisition), and rr is the
// sticky round-robin cursor spreading unkeyed records across partitions.
type topic struct {
	name     string
	cfg      TopicConfig
	parts    []*partition
	produced *metrics.Counter
	fetched  *metrics.Counter
	rr       atomic.Uint64 // next unkeyed partition assignment

	// notify is armed lazily: nil until a consumer subscribes, closed (and
	// reset to nil) by the next produce. Producers with no waiters pay a
	// mutex round-trip and a nil check — no channel allocation per produce.
	notify chan struct{}
	mu     sync.Mutex
}

func (t *topic) wake() {
	t.mu.Lock()
	if t.notify != nil {
		close(t.notify)
		t.notify = nil
	}
	t.mu.Unlock()
}

func (t *topic) waitCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.notify == nil {
		t.notify = make(chan struct{})
	}
	return t.notify
}

// partitionFor routes one record or batch: keyed records hash for stable
// per-key ordering; unkeyed records rotate round-robin so producers without
// keys spread across every partition (hashing the empty key is a constant,
// which used to land ALL unkeyed traffic on one partition). Each call
// advances the cursor, so a batch sticks to one partition — keeping its
// records contiguous — and the next batch moves on.
func (t *topic) partitionFor(key []byte) int {
	if len(t.parts) <= 1 {
		return 0
	}
	if len(key) == 0 {
		return int((t.rr.Add(1) - 1) % uint64(len(t.parts)))
	}
	return PartitionFor(key, len(t.parts))
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock sets the clock used to timestamp records (default: wall clock).
func WithClock(c sim.Clock) Option {
	return func(b *Broker) { b.clock = c }
}

// WithMetrics sets the registry the broker records into.
func WithMetrics(r *metrics.Registry) Option {
	return func(b *Broker) { b.reg = r }
}

// NewBroker returns an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{
		clock:  sim.RealClock{},
		reg:    metrics.NewRegistry(),
		topics: make(map[string]*topic),
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// CreateTopic registers a topic. It fails if the name is taken.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed.Load() {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := &topic{
		name:     name,
		cfg:      cfg,
		parts:    make([]*partition, cfg.Partitions),
		produced: b.reg.Counter("mq.produced." + name),
		fetched:  b.reg.Counter("mq.fetched." + name),
	}
	for i := range t.parts {
		t.parts[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Topics returns the names of all topics.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	return names
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed.Load() {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, name)
	}
	return t, nil
}

// PartitionFor returns the partition a non-empty key routes to. Unkeyed
// records do not use key hashing: the broker assigns them round-robin.
func PartitionFor(key []byte, numPartitions int) int {
	if numPartitions <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(numPartitions))
}

// Topic resolves a produce/fetch handle: the topic-map lookup under the
// broker lock and the metric-counter resolution happen once, here, instead
// of on every call. Handles are valid for the life of the broker and safe
// for concurrent use; after Close their operations fail with ErrClosed.
func (b *Broker) Topic(name string) (*Topic, error) {
	t, err := b.topic(name)
	if err != nil {
		return nil, err
	}
	return &Topic{b: b, t: t}, nil
}

// Topic is a cached handle to one topic — the allocation-free fast path for
// hot producers and consumers.
type Topic struct {
	b *Broker
	t *topic
}

// Name returns the topic name.
func (tp *Topic) Name() string { return tp.t.name }

// Partitions returns the topic's partition count.
func (tp *Topic) Partitions() int { return len(tp.t.parts) }

// Produce appends one record through the handle.
func (tp *Topic) Produce(key, value []byte) (partitionIdx int, offset int64, err error) {
	if tp.b.closed.Load() {
		return 0, 0, ErrClosed
	}
	return tp.b.produce(tp.t, key, value)
}

// ProduceBatch appends a batch through the handle; see Broker.ProduceBatch.
func (tp *Topic) ProduceBatch(key []byte, values [][]byte) (int64, error) {
	if tp.b.closed.Load() {
		return 0, ErrClosed
	}
	return tp.b.produceBatch(tp.t, key, values)
}

// FetchInto reads up to max records from one partition starting at offset,
// appending them to dst — the reuse variant that keeps a hot consumer loop
// from allocating a fresh slice per poll.
func (tp *Topic) FetchInto(dst []Record, partitionIdx int, offset int64, max int) ([]Record, error) {
	if tp.b.closed.Load() {
		return dst, ErrClosed
	}
	return tp.b.fetchInto(tp.t, dst, partitionIdx, offset, max)
}

// Offsets returns the oldest retained and next-to-assign offsets of a
// partition.
func (tp *Topic) Offsets(partitionIdx int) (oldest, newest int64, err error) {
	if tp.b.closed.Load() {
		return 0, 0, ErrClosed
	}
	if partitionIdx < 0 || partitionIdx >= len(tp.t.parts) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionIdx, len(tp.t.parts))
	}
	return tp.t.parts[partitionIdx].oldest(), tp.t.parts[partitionIdx].newest(), nil
}

// WaitProduce returns a channel closed on the topic's next produce.
func (tp *Topic) WaitProduce() (<-chan struct{}, error) {
	if tp.b.closed.Load() {
		return nil, ErrClosed
	}
	ch := tp.t.waitCh()
	// Re-check after arming: Close's wake can run between the check above
	// and waitCh, and a lazily-armed channel it never saw would block its
	// waiter forever.
	if tp.b.closed.Load() {
		tp.t.wake()
	}
	return ch, nil
}

// Produce appends a record to the topic: keyed records route by key hash,
// unkeyed records round-robin across partitions. It returns the assigned
// partition and offset.
func (b *Broker) Produce(topicName string, key, value []byte) (partitionIdx int, offset int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	return b.produce(t, key, value)
}

func (b *Broker) produce(t *topic, key, value []byte) (int, int64, error) {
	if t.cfg.Keyed && len(key) == 0 {
		return 0, 0, ErrEmptyKey
	}
	pi := t.partitionFor(key)
	off := t.parts[pi].append(b.clock.Now(), key, value, t.cfg.RetentionBytes)
	t.produced.Inc()
	t.wake()
	return pi, off, nil
}

// ProduceBatch appends several values with the same key routing rules under
// one partition-lock acquisition, returning the offset of the first record
// of the batch. The whole batch lands contiguously on one partition (unkeyed
// batches stick to the round-robin cursor's current partition; the next
// batch rotates onward).
func (b *Broker) ProduceBatch(topicName string, key []byte, values [][]byte) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return b.produceBatch(t, key, values)
}

//arbd:hotpath
func (b *Broker) produceBatch(t *topic, key []byte, values [][]byte) (int64, error) {
	if t.cfg.Keyed && len(key) == 0 {
		return 0, ErrEmptyKey
	}
	pi := t.partitionFor(key)
	first := t.parts[pi].appendBatch(b.clock.Now(), key, values, t.cfg.RetentionBytes)
	t.produced.Add(int64(len(values)))
	t.wake()
	return first, nil
}

// Fetch reads up to max records from one partition starting at offset.
func (b *Broker) Fetch(topicName string, partitionIdx int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	return b.fetchInto(t, nil, partitionIdx, offset, max)
}

// FetchInto is Fetch appending into dst; see Topic.FetchInto.
func (b *Broker) FetchInto(dst []Record, topicName string, partitionIdx int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return dst, err
	}
	return b.fetchInto(t, dst, partitionIdx, offset, max)
}

//arbd:hotpath
func (b *Broker) fetchInto(t *topic, dst []Record, partitionIdx int, offset int64, max int) ([]Record, error) {
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		//arbd:alloc-ok caller-bug error path, never taken by the steady-state consumer
		return dst, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionIdx, len(t.parts))
	}
	start := len(dst)
	dst, err := t.parts[partitionIdx].readInto(dst, offset, max)
	if err != nil {
		return dst, err
	}
	for i := start; i < len(dst); i++ {
		dst[i].Partition = partitionIdx
	}
	t.fetched.Add(int64(len(dst) - start))
	return dst, nil
}

// Offsets returns the oldest retained and next-to-assign offsets of a
// partition.
func (b *Broker) Offsets(topicName string, partitionIdx int) (oldest, newest int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionIdx, len(t.parts))
	}
	return t.parts[partitionIdx].oldest(), t.parts[partitionIdx].newest(), nil
}

// WaitProduce returns a channel that is closed the next time any record is
// produced to the topic. Consumers use it to block without polling.
func (b *Broker) WaitProduce(topicName string) (<-chan struct{}, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	ch := t.waitCh()
	if b.closed.Load() {
		t.wake() // see Topic.WaitProduce
	}
	return ch, nil
}

// Close shuts the broker; subsequent operations fail with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed.Swap(true) {
		return
	}
	for _, t := range b.topics {
		t.wake() // release blocked consumers
	}
}

// Lag returns the total number of records between committed group offsets
// and the head across all partitions of the topic.
func (b *Broker) Lag(topicName string, g *Group) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	var lag int64
	for pi := range t.parts {
		head := t.parts[pi].newest()
		lag += head - g.Committed(pi)
	}
	return lag, nil
}
