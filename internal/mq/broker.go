package mq

import (
	"fmt"
	"hash/fnv"
	"sync"

	"arbd/internal/metrics"
	"arbd/internal/sim"
)

// Broker owns topics and serves producers and consumers. It is safe for
// concurrent use.
type Broker struct {
	clock sim.Clock
	reg   *metrics.Registry

	mu     sync.RWMutex
	topics map[string]*topic
	closed bool
}

// Option configures a Broker.
type Option func(*Broker)

// WithClock sets the clock used to timestamp records (default: wall clock).
func WithClock(c sim.Clock) Option {
	return func(b *Broker) { b.clock = c }
}

// WithMetrics sets the registry the broker records into.
func WithMetrics(r *metrics.Registry) Option {
	return func(b *Broker) { b.reg = r }
}

// NewBroker returns an empty broker.
func NewBroker(opts ...Option) *Broker {
	b := &Broker{
		clock:  sim.RealClock{},
		reg:    metrics.NewRegistry(),
		topics: make(map[string]*topic),
	}
	for _, opt := range opts {
		opt(b)
	}
	return b
}

// Metrics returns the broker's metrics registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// CreateTopic registers a topic. It fails if the name is taken.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := &topic{
		name:   name,
		cfg:    cfg,
		parts:  make([]*partition, cfg.Partitions),
		notify: make(chan struct{}),
	}
	for i := range t.parts {
		t.parts[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Topics returns the names of all topics.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	names := make([]string, 0, len(b.topics))
	for n := range b.topics {
		names = append(names, n)
	}
	return names
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(topicName string) (int, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	return len(t.parts), nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTopic, name)
	}
	return t, nil
}

// PartitionFor returns the partition a key routes to.
func PartitionFor(key []byte, numPartitions int) int {
	if numPartitions <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(numPartitions))
}

// Produce appends a record to the topic, routing by key hash (or partition 0
// for empty keys on unkeyed topics). It returns the assigned partition and
// offset.
func (b *Broker) Produce(topicName string, key, value []byte) (partitionIdx int, offset int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	if t.cfg.Keyed && len(key) == 0 {
		return 0, 0, ErrEmptyKey
	}
	partitionIdx = PartitionFor(key, len(t.parts))
	offset = t.parts[partitionIdx].append(b.clock.Now(), key, value)
	if t.cfg.RetentionBytes > 0 {
		t.parts[partitionIdx].truncate(t.cfg.RetentionBytes)
	}
	b.reg.Counter("mq.produced." + topicName).Inc()
	t.wake()
	return partitionIdx, offset, nil
}

// ProduceBatch appends several values with the same key routing rules,
// returning the offset of the first record of the batch.
func (b *Broker) ProduceBatch(topicName string, key []byte, values [][]byte) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	if t.cfg.Keyed && len(key) == 0 {
		return 0, ErrEmptyKey
	}
	pi := PartitionFor(key, len(t.parts))
	var first int64 = -1
	now := b.clock.Now()
	for _, v := range values {
		off := t.parts[pi].append(now, key, v)
		if first < 0 {
			first = off
		}
	}
	if t.cfg.RetentionBytes > 0 {
		t.parts[pi].truncate(t.cfg.RetentionBytes)
	}
	b.reg.Counter("mq.produced." + topicName).Add(int64(len(values)))
	t.wake()
	return first, nil
}

// Fetch reads up to max records from one partition starting at offset.
func (b *Broker) Fetch(topicName string, partitionIdx int, offset int64, max int) ([]Record, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionIdx, len(t.parts))
	}
	recs, err := t.parts[partitionIdx].read(offset, max)
	if err != nil {
		return nil, err
	}
	for i := range recs {
		recs[i].Partition = partitionIdx
	}
	b.reg.Counter("mq.fetched." + topicName).Add(int64(len(recs)))
	return recs, nil
}

// Offsets returns the oldest retained and next-to-assign offsets of a
// partition.
func (b *Broker) Offsets(topicName string, partitionIdx int) (oldest, newest int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	if partitionIdx < 0 || partitionIdx >= len(t.parts) {
		return 0, 0, fmt.Errorf("%w: %d of %d", ErrBadPartition, partitionIdx, len(t.parts))
	}
	return t.parts[partitionIdx].oldest(), t.parts[partitionIdx].newest(), nil
}

// WaitProduce returns a channel that is closed the next time any record is
// produced to the topic. Consumers use it to block without polling.
func (b *Broker) WaitProduce(topicName string) (<-chan struct{}, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	return t.waitCh(), nil
}

// Close shuts the broker; subsequent operations fail with ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		t.wake() // release blocked consumers
	}
}

// Lag returns the total number of records between committed group offsets
// and the head across all partitions of the topic.
func (b *Broker) Lag(topicName string, g *Group) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	var lag int64
	for pi := range t.parts {
		head := t.parts[pi].newest()
		lag += head - g.Committed(pi)
	}
	return lag, nil
}
