// Package mq implements the platform's ingestion substrate: an in-memory,
// partitioned, segmented commit log with topics, consumer groups, and
// at-least-once delivery — the role Kafka plays in the stream architectures
// the paper assumes. Records are durable for the life of the process and
// subject to size-based retention, which is sufficient for the simulated
// deployments this repository targets (see DESIGN.md substitution table).
//
// Storage layout: each partition is a sequence of fixed-record-count
// segments, and each segment owns a byte arena — one backing array holding
// every record's Key and Value bytes. Appends copy payloads into the arena
// and store a pointer-free per-record descriptor (timestamp plus arena
// offsets), so the produce path costs ~2 allocations per segment instead of
// 2 per record, and a retained segment costs the garbage collector O(1)
// mark work regardless of how many records it holds. Record structs are
// materialized at read time, with Key/Value subslicing the arena. A
// segment's arena lives exactly as long as the segment (the unit of
// retention), and fetched records keep the arena reachable, so records
// handed to consumers stay valid even after retention drops their segment
// from the log.
package mq

import (
	"errors"
	"sync"
	"time"
)

// Errors returned by the log.
var (
	ErrNoTopic        = errors.New("mq: topic does not exist")
	ErrTopicExists    = errors.New("mq: topic already exists")
	ErrBadPartition   = errors.New("mq: partition out of range")
	ErrOffsetOutOfLog = errors.New("mq: offset below retention horizon")
	ErrClosed         = errors.New("mq: broker closed")
	ErrEmptyKey       = errors.New("mq: record key must not be empty when topic is keyed")
)

// Record is one message in a partition log. Key and Value alias the log's
// per-segment arena: they stay valid indefinitely (retention keeps the arena
// alive through the record), but consumers must treat them as read-only.
type Record struct {
	Offset    int64
	Time      time.Time
	Key       []byte
	Value     []byte
	Partition int
}

// segmentSize is the number of records per log segment. Segments are the
// unit of retention: the oldest whole segments are dropped when a partition
// exceeds its retention budget.
const segmentSize = 1024

// recordOverhead is the per-record bookkeeping cost charged against the
// retention budget on top of key+value bytes.
const recordOverhead = 32

// minArenaBytes seeds a fresh segment's arena capacity; subsequent segments
// inherit the previous segment's final arena size so a steady workload
// settles at one arena allocation per segment.
const minArenaBytes = 4096

// maxArenaBytes caps one segment's arena so recMeta's uint32 offsets always
// address it; a payload that would overflow rolls a new segment early.
const maxArenaBytes = 1<<32 - 1

// recMeta locates one record inside its segment. It is deliberately
// pointer-free — the garbage collector never scans inside a retained
// segment, so mark cost is O(segments), not O(records) — and Record structs
// are materialized from it at read time.
type recMeta struct {
	sec    int64  // timestamp seconds
	nsec   int32  // timestamp nanoseconds into sec
	pos    uint32 // start of key+value bytes in the arena
	keyLen uint32
	valLen uint32
}

// segment is a fixed-capacity run of consecutive records plus the arena
// backing their payload bytes. Record i has offset base+i.
type segment struct {
	base  int64
	meta  []recMeta
	data  []byte // arena: every record's Key and Value bytes, in append order
	bytes int64  // retention-accounted bytes of this segment
}

// record materializes record i. The full slice expressions pin capacity so
// appending to a fetched record's Key/Value reallocates instead of
// clobbering the next record's bytes; zero-length fields come back nil.
func (s *segment) record(i int) Record {
	m := &s.meta[i]
	rec := Record{
		Offset: s.base + int64(i),
		Time:   time.Unix(m.sec, int64(m.nsec)),
	}
	if m.keyLen > 0 {
		end := m.pos + m.keyLen
		rec.Key = s.data[m.pos:end:end]
	}
	if m.valLen > 0 {
		vp := m.pos + m.keyLen
		end := vp + m.valLen
		rec.Value = s.data[vp:end:end]
	}
	return rec
}

// partition is a sequence of segments plus the next offset to assign.
type partition struct {
	mu       sync.RWMutex
	segments []*segment
	next     int64
	bytes    int64
}

// tailLocked returns the segment the next payload-byte append lands in,
// rolling a new one when the tail is full (or would outgrow uint32 arena
// addressing).
func (p *partition) tailLocked(payload int) *segment {
	if n := len(p.segments); n > 0 {
		seg := p.segments[n-1]
		if len(seg.meta) < segmentSize &&
			(len(seg.meta) == 0 || int64(len(seg.data))+int64(payload) <= maxArenaBytes) {
			return seg
		}
	}
	arenaCap := minArenaBytes
	if n := len(p.segments); n > 0 {
		if prev := len(p.segments[n-1].data); prev > arenaCap {
			arenaCap = prev
		}
	}
	seg := &segment{
		base: p.next,
		meta: make([]recMeta, 0, segmentSize),
		data: make([]byte, 0, arenaCap),
	}
	p.segments = append(p.segments, seg)
	return seg
}

// appendLocked adds one record to the tail segment. The timestamp arrives
// pre-split so batch appends pay the time.Time decomposition once, not per
// record. p.mu must be held.
//
//arbd:hotpath
func (p *partition) appendLocked(sec int64, nsec int32, key, value []byte) int64 {
	seg := p.tailLocked(len(key) + len(value))
	pos := uint32(len(seg.data))
	seg.data = append(seg.data, key...)
	seg.data = append(seg.data, value...)
	seg.meta = append(seg.meta, recMeta{
		sec:    sec,
		nsec:   nsec,
		pos:    pos,
		keyLen: uint32(len(key)),
		valLen: uint32(len(value)),
	})
	cost := int64(len(key)+len(value)) + recordOverhead
	seg.bytes += cost
	p.bytes += cost
	off := p.next
	p.next++
	return off
}

// append adds one record and applies retention under a single lock
// acquisition.
func (p *partition) append(now time.Time, key, value []byte, retention int64) int64 {
	sec, nsec := now.Unix(), int32(now.Nanosecond())
	p.mu.Lock()
	defer p.mu.Unlock()
	off := p.appendLocked(sec, nsec, key, value)
	if retention > 0 {
		p.truncateLocked(retention)
	}
	return off
}

// appendBatch adds every value under ONE lock acquisition and runs retention
// truncation once at the end — a batch's records are always contiguous, and
// concurrent batch producers interleave at batch granularity, not record
// granularity. Returns the offset of the batch's first record (-1 for an
// empty batch).
//
// The fast path reserves each segment's meta slots up front and fills them
// by index, so the per-record cost is the payload copy plus one struct
// store — no per-record function calls, capacity checks, or bookkeeping.
// Batches big enough to threaten uint32 arena addressing (≥4 GiB) take the
// per-record path, which rolls segments as needed.
//
//arbd:hotpath
func (p *partition) appendBatch(now time.Time, key []byte, values [][]byte, retention int64) int64 {
	if len(values) == 0 {
		return -1
	}
	sec, nsec := now.Unix(), int32(now.Nanosecond())
	kl := uint32(len(key))
	total := int64(0)
	for _, v := range values {
		total += int64(len(key) + len(v))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	first := p.next
	tailLen := 0
	if n := len(p.segments); n > 0 {
		tailLen = len(p.segments[n-1].data)
	}
	if int64(tailLen)+total > maxArenaBytes {
		for _, v := range values {
			p.appendLocked(sec, nsec, key, v)
		}
	} else {
		i := 0
		for i < len(values) {
			seg := p.tailLocked(0)
			chunk := segmentSize - len(seg.meta)
			if rem := len(values) - i; chunk > rem {
				chunk = rem
			}
			m := len(seg.meta)
			seg.meta = seg.meta[:m+chunk]
			data := seg.data
			payload := int64(0)
			for k := 0; k < chunk; k++ {
				v := values[i+k]
				pos := uint32(len(data))
				data = append(data, key...)
				data = append(data, v...)
				seg.meta[m+k] = recMeta{sec: sec, nsec: nsec, pos: pos, keyLen: kl, valLen: uint32(len(v))}
				payload += int64(len(v))
			}
			cost := payload + int64(chunk)*(int64(len(key))+recordOverhead)
			seg.data = data
			seg.bytes += cost
			p.bytes += cost
			i += chunk
		}
		p.next = first + int64(len(values))
	}
	if retention > 0 {
		p.truncateLocked(retention)
	}
	return first
}

// oldest returns the lowest retained offset (== next when empty).
func (p *partition) oldest() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.segments) == 0 {
		return p.next
	}
	return p.segments[0].base
}

func (p *partition) newest() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.next
}

// readInto appends up to max records starting at offset to dst. The record
// structs are materialized fresh; their Key/Value bytes alias the segment
// arenas.
//
//arbd:hotpath
func (p *partition) readInto(dst []Record, offset int64, max int) ([]Record, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.segments) > 0 && offset < p.segments[0].base {
		return dst, ErrOffsetOutOfLog
	}
	if offset >= p.next || max <= 0 {
		return dst, nil
	}
	// Binary search over segments: find the segment containing offset.
	lo, hi := 0, len(p.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.segments[mid].base <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	taken := 0
	for si := lo; si < len(p.segments) && taken < max; si++ {
		seg := p.segments[si]
		start := 0
		if offset > seg.base {
			start = int(offset - seg.base)
		}
		for i := start; i < len(seg.meta) && taken < max; i++ {
			dst = append(dst, seg.record(i))
			taken++
		}
	}
	return dst, nil
}

// truncateLocked drops whole segments until retained bytes <= budget, always
// keeping the newest segment. Per-segment byte totals make this O(dropped
// segments), not O(dropped records). p.mu must be held.
func (p *partition) truncateLocked(budget int64) {
	for len(p.segments) > 1 && p.bytes > budget {
		p.bytes -= p.segments[0].bytes
		p.segments[0] = nil // release the segment (and its arena) promptly
		p.segments = p.segments[1:]
	}
}

// TopicConfig configures a topic at creation.
type TopicConfig struct {
	Partitions     int   // number of partitions; default 1
	RetentionBytes int64 // per-partition retention budget; <=0 means unlimited
	Keyed          bool  // if true, Produce requires a non-empty key
}
