// Package mq implements the platform's ingestion substrate: an in-memory,
// partitioned, segmented commit log with topics, consumer groups, and
// at-least-once delivery — the role Kafka plays in the stream architectures
// the paper assumes. Records are durable for the life of the process and
// subject to size-based retention, which is sufficient for the simulated
// deployments this repository targets (see DESIGN.md substitution table).
package mq

import (
	"errors"
	"sync"
	"time"
)

// Errors returned by the log.
var (
	ErrNoTopic        = errors.New("mq: topic does not exist")
	ErrTopicExists    = errors.New("mq: topic already exists")
	ErrBadPartition   = errors.New("mq: partition out of range")
	ErrOffsetOutOfLog = errors.New("mq: offset below retention horizon")
	ErrClosed         = errors.New("mq: broker closed")
	ErrEmptyKey       = errors.New("mq: record key must not be empty when topic is keyed")
)

// Record is one message in a partition log.
type Record struct {
	Offset    int64
	Time      time.Time
	Key       []byte
	Value     []byte
	Partition int
}

// segmentSize is the number of records per log segment. Segments are the
// unit of retention: the oldest whole segments are dropped when a partition
// exceeds its retention budget.
const segmentSize = 1024

// segment is a fixed-capacity run of consecutive records.
type segment struct {
	base    int64 // offset of records[0]
	records []Record
}

// partition is a sequence of segments plus the next offset to assign.
type partition struct {
	mu       sync.RWMutex
	segments []*segment
	next     int64
	bytes    int64
}

func (p *partition) append(now time.Time, key, value []byte) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.segments) == 0 || len(p.segments[len(p.segments)-1].records) >= segmentSize {
		p.segments = append(p.segments, &segment{
			base:    p.next,
			records: make([]Record, 0, segmentSize),
		})
	}
	seg := p.segments[len(p.segments)-1]
	rec := Record{
		Offset: p.next,
		Time:   now,
		Key:    append([]byte(nil), key...),
		Value:  append([]byte(nil), value...),
	}
	seg.records = append(seg.records, rec)
	p.next++
	p.bytes += int64(len(key) + len(value) + 32)
	return rec.Offset
}

// oldest returns the lowest retained offset (== next when empty).
func (p *partition) oldest() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.segments) == 0 {
		return p.next
	}
	return p.segments[0].base
}

func (p *partition) newest() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.next
}

// read copies up to max records starting at offset into out.
func (p *partition) read(offset int64, max int) ([]Record, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.segments) > 0 && offset < p.segments[0].base {
		return nil, ErrOffsetOutOfLog
	}
	if offset >= p.next || max <= 0 {
		return nil, nil
	}
	// Binary search over segments: find the segment containing offset.
	lo, hi := 0, len(p.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.segments[mid].base <= offset {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	out := make([]Record, 0, max)
	for si := lo; si < len(p.segments) && len(out) < max; si++ {
		seg := p.segments[si]
		start := 0
		if offset > seg.base {
			start = int(offset - seg.base)
		}
		for i := start; i < len(seg.records) && len(out) < max; i++ {
			out = append(out, seg.records[i])
		}
	}
	return out, nil
}

// truncate drops whole segments until retained bytes <= budget, always
// keeping the newest segment. Returns the number of records dropped.
func (p *partition) truncate(budget int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	dropped := 0
	for len(p.segments) > 1 && p.bytes > budget {
		seg := p.segments[0]
		for _, r := range seg.records {
			p.bytes -= int64(len(r.Key) + len(r.Value) + 32)
		}
		dropped += len(seg.records)
		p.segments = p.segments[1:]
	}
	return dropped
}

// TopicConfig configures a topic at creation.
type TopicConfig struct {
	Partitions     int   // number of partitions; default 1
	RetentionBytes int64 // per-partition retention budget; <=0 means unlimited
	Keyed          bool  // if true, Produce requires a non-empty key
}

// topic holds a topic's partitions.
type topic struct {
	name   string
	cfg    TopicConfig
	parts  []*partition
	notify chan struct{} // closed-and-replaced on each produce to wake pollers
	mu     sync.Mutex
}

func (t *topic) wake() {
	t.mu.Lock()
	close(t.notify)
	t.notify = make(chan struct{})
	t.mu.Unlock()
}

func (t *topic) waitCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notify
}
