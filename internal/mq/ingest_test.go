package mq

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"arbd/internal/sim"
)

// TestUnkeyedProduceSpreadsPartitions pins the round-robin partitioner:
// before it, unkeyed records hashed the empty key — a constant — so every
// unkeyed producer landed on one partition and starved the other three.
func TestUnkeyedProduceSpreadsPartitions(t *testing.T) {
	b := newTestBroker(t, 4)
	const total = 400
	for i := 0; i < total; i++ {
		if _, _, err := b.Produce("events", nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for pi := 0; pi < 4; pi++ {
		_, newest, err := b.Offsets("events", pi)
		if err != nil {
			t.Fatal(err)
		}
		if newest != total/4 {
			t.Fatalf("partition %d got %d records, want %d (unkeyed traffic not spread)",
				pi, newest, total/4)
		}
	}
}

// TestUnkeyedBatchSticksToOnePartition: a batch stays contiguous on a single
// partition (the round-robin cursor advances per call, not per record).
func TestUnkeyedBatchSticksToOnePartition(t *testing.T) {
	b := newTestBroker(t, 4)
	values := make([][]byte, 10)
	for i := range values {
		values[i] = []byte{byte(i)}
	}
	for call := 0; call < 8; call++ {
		if _, err := b.ProduceBatch("events", nil, values); err != nil {
			t.Fatal(err)
		}
	}
	// 8 batches over 4 partitions: each partition holds exactly 2 whole
	// batches, nothing straddles.
	for pi := 0; pi < 4; pi++ {
		_, newest, err := b.Offsets("events", pi)
		if err != nil {
			t.Fatal(err)
		}
		if newest != 2*int64(len(values)) {
			t.Fatalf("partition %d got %d records, want %d", pi, newest, 2*len(values))
		}
	}
}

// TestConcurrentBatchProducersOnePartition races batch producers against a
// single partition (same key) and verifies batches interleave at batch
// granularity: every batch occupies the contiguous offset range starting at
// its returned first offset. Run with -race this also exercises the
// lock-once append path for data races.
func TestConcurrentBatchProducersOnePartition(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("one", TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	const producers, batchesEach, batchLen = 8, 25, 16
	type claim struct {
		first int64
		tag   byte
	}
	claims := make(chan claim, producers*batchesEach)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			values := make([][]byte, batchLen)
			for i := range values {
				values[i] = []byte{tag, byte(i)}
			}
			for i := 0; i < batchesEach; i++ {
				first, err := b.ProduceBatch("one", nil, values)
				if err != nil {
					t.Errorf("produce: %v", err)
					return
				}
				claims <- claim{first: first, tag: tag}
			}
		}(byte(p))
	}
	wg.Wait()
	close(claims)

	recs, err := b.Fetch("one", 0, 0, producers*batchesEach*batchLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != producers*batchesEach*batchLen {
		t.Fatalf("fetched %d records, want %d", len(recs), producers*batchesEach*batchLen)
	}
	for c := range claims {
		for i := 0; i < batchLen; i++ {
			r := recs[c.first+int64(i)]
			if r.Value[0] != c.tag || r.Value[1] != byte(i) {
				t.Fatalf("batch at %d not contiguous: record %d = %v, want [%d %d]",
					c.first, r.Offset, r.Value, c.tag, i)
			}
		}
	}
}

func TestTopicHandle(t *testing.T) {
	b := newTestBroker(t, 2)
	if _, err := b.Topic("nope"); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("missing topic err = %v, want ErrNoTopic", err)
	}
	tp, err := b.Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name() != "events" || tp.Partitions() != 2 {
		t.Fatalf("handle = %q/%d", tp.Name(), tp.Partitions())
	}
	pi, off, err := tp.Produce([]byte("k"), []byte("v1"))
	if err != nil || off != 0 {
		t.Fatalf("produce = %d,%d,%v", pi, off, err)
	}
	first, err := tp.ProduceBatch([]byte("k"), [][]byte{[]byte("v2"), []byte("v3")})
	if err != nil || first != 1 {
		t.Fatalf("batch = %d,%v", first, err)
	}
	recs, err := tp.FetchInto(nil, pi, 0, 10)
	if err != nil || len(recs) != 3 {
		t.Fatalf("fetch = %d recs, %v", len(recs), err)
	}
	oldest, newest, err := tp.Offsets(pi)
	if err != nil || oldest != 0 || newest != 3 {
		t.Fatalf("offsets = %d..%d, %v", oldest, newest, err)
	}
	if _, _, err := tp.Offsets(99); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("bad partition err = %v", err)
	}
	// Counters resolved at CreateTopic observe handle traffic.
	if got := b.Metrics().Counter("mq.produced.events").Value(); got != 3 {
		t.Fatalf("produced counter = %d, want 3", got)
	}
	if got := b.Metrics().Counter("mq.fetched.events").Value(); got != 3 {
		t.Fatalf("fetched counter = %d, want 3", got)
	}
}

// TestTopicHandleFailsAfterClose: handles bypass the broker's topic map, so
// they must observe Close through the shared closed flag.
func TestTopicHandleFailsAfterClose(t *testing.T) {
	b := newTestBroker(t, 1)
	tp, err := b.Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, _, err := tp.Produce(nil, []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("produce err = %v, want ErrClosed", err)
	}
	if _, err := tp.ProduceBatch(nil, [][]byte{[]byte("v")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch err = %v, want ErrClosed", err)
	}
	if _, err := tp.FetchInto(nil, 0, 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("fetch err = %v, want ErrClosed", err)
	}
	if _, _, err := tp.Offsets(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("offsets err = %v, want ErrClosed", err)
	}
	if _, err := tp.WaitProduce(); !errors.Is(err, ErrClosed) {
		t.Fatalf("wait err = %v, want ErrClosed", err)
	}
}

// TestPollIntoReusesBuffer: PollInto appends to dst without reallocating
// when capacity suffices, and leaves existing elements alone.
func TestPollIntoReusesBuffer(t *testing.T) {
	b := newTestBroker(t, 1)
	for i := 0; i < 10; i++ {
		if _, _, err := b.Produce("events", nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.NewGroup("events")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 0, 16)
	recs, err := g.PollInto(buf, 10)
	if err != nil || len(recs) != 10 {
		t.Fatalf("poll = %d recs, %v", len(recs), err)
	}
	if &recs[0] != &buf[:1][0] {
		t.Fatal("PollInto reallocated despite sufficient capacity")
	}
	// Appending after existing elements preserves them.
	sentinel := Record{Offset: -7}
	recs2, err := g.PollInto(append(buf[:0], sentinel), 5)
	if err != nil || len(recs2) != 6 {
		t.Fatalf("poll with prefix = %d recs, %v", len(recs2), err)
	}
	if recs2[0].Offset != -7 {
		t.Fatalf("PollInto clobbered dst prefix: %+v", recs2[0])
	}
}

// TestProduceSteadyStateAllocs pins the batch produce path's amortized
// allocation rate: arena segments make it ~2 allocations per 1024-record
// segment, and the ISSUE's acceptance ceiling is 0.1 per record.
func TestProduceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	b := NewBroker()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 4, RetentionBytes: 32 << 20}); err != nil {
		t.Fatal(err)
	}
	tp, err := b.Topic("t")
	if err != nil {
		t.Fatal(err)
	}
	const batchLen, batches = 64, 200
	values := make([][]byte, batchLen)
	for i := range values {
		values[i] = bytes.Repeat([]byte{byte(i)}, 24)
	}
	// Warm up past initial segment growth.
	for i := 0; i < 32; i++ {
		if _, err := tp.ProduceBatch(nil, values); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(batches, func() {
		if _, err := tp.ProduceBatch(nil, values); err != nil {
			t.Fatal(err)
		}
	})
	perRecord := allocs / batchLen
	if perRecord > 0.1 {
		t.Fatalf("produce allocs/record = %.4f (%.1f per batch), want <= 0.1", perRecord, allocs)
	}
}

// TestConsumeSteadyStateAllocs pins the PollInto drain path: with a reused
// buffer the consumer allocates nothing per record at steady state.
func TestConsumeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	b := NewBroker()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	tp, err := b.Topic("t")
	if err != nil {
		t.Fatal(err)
	}
	values := make([][]byte, 64)
	for i := range values {
		values[i] = []byte("telemetry-record-payload")
	}
	for i := 0; i < 256; i++ {
		if _, err := tp.ProduceBatch(nil, values); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.NewGroup("t")
	if err != nil {
		t.Fatal(err)
	}
	const pollMax = 256
	buf := make([]Record, 0, pollMax)
	consumed := 0
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	for {
		recs, err := g.PollInto(buf[:0], pollMax)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		consumed += len(recs)
		for i := range recs {
			g.Commit(recs[i].Partition, recs[i].Offset+1)
		}
	}
	runtime.ReadMemStats(&m2)
	if consumed == 0 {
		t.Fatal("nothing consumed")
	}
	if perRecord := float64(m2.Mallocs-m1.Mallocs) / float64(consumed); perRecord > 0.01 {
		t.Fatalf("consume allocs/record = %.5f, want ~0", perRecord)
	}
}

// TestProduceBatchEmpty: an empty batch is a no-op returning -1.
func TestProduceBatchEmpty(t *testing.T) {
	b := newTestBroker(t, 1)
	first, err := b.ProduceBatch("events", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != -1 {
		t.Fatalf("empty batch first = %d, want -1", first)
	}
	_, newest, _ := b.Offsets("events", 0)
	if newest != 0 {
		t.Fatalf("empty batch appended %d records", newest)
	}
}

// TestRecordTimeSurvivesStorage: timestamps round-trip through the
// pointer-free segment metadata with full nanosecond precision.
func TestRecordTimeSurvivesStorage(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 34, 56, 789012345, time.UTC)
	clk := sim.NewVirtualClock(at)
	b := NewBroker(WithClock(clk))
	if err := b.CreateTopic("t", TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce("t", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Fetch("t", 0, 0, 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("fetch = %v, %v", recs, err)
	}
	if !recs[0].Time.Equal(at) {
		t.Fatalf("stored time = %v, want %v", recs[0].Time, at)
	}
}

// TestWaitProduceAfterCloseDoesNotBlock covers the lazily-armed notify
// channel: a waiter that subscribes while Close runs must still be released.
func TestWaitProduceAfterCloseDoesNotBlock(t *testing.T) {
	b := newTestBroker(t, 1)
	tp, err := b.Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tp.WaitProduce()
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("armed waiter not released by Close")
	}
}

func TestGroupLagAfterClose(t *testing.T) {
	b := newTestBroker(t, 1)
	g, err := b.NewGroup("events")
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := g.Lag(); !errors.Is(err, ErrClosed) {
		t.Fatalf("lag err = %v, want ErrClosed", err)
	}
	if _, err := g.Poll(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("poll err = %v, want ErrClosed", err)
	}
}

// benchProduceBatchValues builds a telemetry-shaped batch for benchmarks.
func benchProduceBatchValues(n, size int) [][]byte {
	values := make([][]byte, n)
	for i := range values {
		values[i] = bytes.Repeat([]byte{byte(i)}, size)
	}
	return values
}

func BenchmarkProduceBatchHandle(b *testing.B) {
	br := NewBroker()
	if err := br.CreateTopic("t", TopicConfig{Partitions: 4, RetentionBytes: 32 << 20}); err != nil {
		b.Fatal(err)
	}
	tp, err := br.Topic("t")
	if err != nil {
		b.Fatal(err)
	}
	values := benchProduceBatchValues(256, 24)
	b.ReportAllocs()
	b.SetBytes(256 * 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tp.ProduceBatch(nil, values); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProduceSingleByName(b *testing.B) {
	br := NewBroker()
	if err := br.CreateTopic("t", TopicConfig{Partitions: 4, RetentionBytes: 32 << 20}); err != nil {
		b.Fatal(err)
	}
	value := bytes.Repeat([]byte{7}, 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := br.Produce("t", nil, value); err != nil {
			b.Fatal(err)
		}
	}
}
