package mq

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"arbd/internal/sim"
)

// TestFetchedRecordsSurviveRetention proves the arena-aliasing contract:
// records handed out by Fetch keep their bytes even after retention drops
// the segment (and its backing arena) they were read from. The segment
// arena is only unreferenced, never recycled, so fetched subslices stay
// valid for as long as the caller holds them.
func TestFetchedRecordsSurviveRetention(t *testing.T) {
	b := NewBroker(WithClock(sim.NewVirtualClock(time.Time{})))
	defer b.Close()
	// ~132 bytes/record (100 value + 32 overhead): one 1024-record segment
	// costs ~135KB, so a 200KB budget keeps at most one full segment plus
	// the open tail.
	if err := b.CreateTopic("t", TopicConfig{Partitions: 1, RetentionBytes: 200_000}); err != nil {
		t.Fatal(err)
	}
	value := make([]byte, 100)
	for i := 0; i < segmentSize+10; i++ {
		copy(value, fmt.Sprintf("record-%04d", i))
		if _, _, err := b.Produce("t", nil, value); err != nil {
			t.Fatal(err)
		}
	}

	held, err := b.Fetch("t", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(held) != 10 {
		t.Fatalf("fetched %d records, want 10", len(held))
	}
	want := make([][]byte, len(held))
	for i, r := range held {
		want[i] = append([]byte(nil), r.Value...)
	}

	// Produce enough to roll two more segments; retention must drop the
	// segment backing the held records.
	for i := 0; i < 2*segmentSize; i++ {
		if _, _, err := b.Produce("t", nil, value); err != nil {
			t.Fatal(err)
		}
	}
	oldest, _, err := b.Offsets("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if oldest <= 9 {
		t.Fatalf("oldest offset = %d; retention never dropped the held segment", oldest)
	}
	if _, err := b.Fetch("t", 0, 0, 1); err == nil {
		t.Fatal("offset 0 still fetchable; test set-up did not evict the segment")
	}

	for i, r := range held {
		if !bytes.Equal(r.Value, want[i]) {
			t.Fatalf("record %d mutated after retention: %q != %q", i, r.Value, want[i])
		}
	}
}

// TestFetchedRecordAppendDoesNotClobberNeighbor proves that Key/Value
// subslices are capacity-pinned: appending to one fetched record's slices
// reallocates rather than overwriting the neighbouring record's bytes in
// the shared segment arena.
func TestFetchedRecordAppendDoesNotClobberNeighbor(t *testing.T) {
	b := NewBroker(WithClock(sim.NewVirtualClock(time.Time{})))
	defer b.Close()
	if err := b.CreateTopic("t", TopicConfig{Partitions: 1, Keyed: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce("t", []byte("ka"), []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce("t", []byte("kb"), []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	recs, err := b.Fetch("t", 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("fetched %d records, want 2", len(recs))
	}

	_ = append(recs[0].Key, []byte("XXXX")...)
	_ = append(recs[0].Value, []byte("YYYY")...)

	again, err := b.Fetch("t", 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again[1].Key, []byte("kb")) || !bytes.Equal(again[1].Value, []byte("bbbb")) {
		t.Fatalf("neighbour record clobbered: key=%q value=%q", again[1].Key, again[1].Value)
	}
	if !bytes.Equal(recs[1].Key, []byte("kb")) || !bytes.Equal(recs[1].Value, []byte("bbbb")) {
		t.Fatalf("held neighbour clobbered: key=%q value=%q", recs[1].Key, recs[1].Value)
	}
}
