package ehr

import (
	"errors"
	"testing"
	"time"

	"arbd/internal/sensor"
	"arbd/internal/sim"
)

var t0 = sim.Epoch

func TestPatientRoundTrip(t *testing.T) {
	s := NewStore()
	p := Patient{
		ID: 7, Name: "Ada Wong", Age: 54,
		Conditions:  []string{"hypertension"},
		Medications: []string{"lisinopril"},
		Allergies:   []string{"penicillin"},
	}
	if err := s.PutPatient(p); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetPatient(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Conditions) != 1 || got.Allergies[0] != "penicillin" {
		t.Fatalf("got = %+v", got)
	}
}

func TestGetMissingPatient(t *testing.T) {
	s := NewStore()
	if _, err := s.GetPatient(99); !errors.Is(err, ErrNoPatient) {
		t.Fatalf("err = %v", err)
	}
}

func TestPatientUpdateDoesNotDuplicateID(t *testing.T) {
	s := NewStore()
	_ = s.PutPatient(Patient{ID: 1, Name: "v1"})
	_ = s.PutPatient(Patient{ID: 1, Name: "v2"})
	if ids := s.PatientIDs(); len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	got, _ := s.GetPatient(1)
	if got.Name != "v2" {
		t.Fatalf("name = %q", got.Name)
	}
}

func TestVitalsWindowAndLatest(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.RecordVital(1, sensor.VitalSample{
			Time: t0.Add(time.Duration(i) * time.Second), Kind: sensor.VitalHeartRate, Value: float64(60 + i),
		})
	}
	pts, err := s.VitalsWindow(1, sensor.VitalHeartRate, t0.Add(3*time.Second), t0.Add(6*time.Second))
	if err != nil || len(pts) != 4 {
		t.Fatalf("window = %d pts, %v", len(pts), err)
	}
	latest, err := s.LatestVital(1, sensor.VitalHeartRate)
	if err != nil || latest.Value != 69 {
		t.Fatalf("latest = %+v, %v", latest, err)
	}
}

func ingestSteady(e *AlertEngine, patient uint64, kind sensor.VitalKind, value float64, from time.Time, n int) []Alert {
	var all []Alert
	for i := 0; i < n; i++ {
		all = append(all, e.Ingest(patient, sensor.VitalSample{
			Time: from.Add(time.Duration(i) * time.Second), Kind: kind, Value: value,
		})...)
	}
	return all
}

func TestAlertEngineFiresOnThreshold(t *testing.T) {
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	// Healthy heart rate: no alerts.
	if alerts := ingestSteady(e, 1, sensor.VitalHeartRate, 75, t0, 30); len(alerts) != 0 {
		t.Fatalf("healthy HR alerted: %v", alerts)
	}
	// Tachycardia: must fire.
	alerts := ingestSteady(e, 1, sensor.VitalHeartRate, 160, t0.Add(time.Minute+30*time.Second), 30)
	if len(alerts) == 0 {
		t.Fatal("tachycardia never alerted")
	}
	if alerts[0].Rule != "tachycardia" || alerts[0].Value <= 130 {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestAlertEngineWindowedMeanResistsSpikes(t *testing.T) {
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	// 14 healthy samples then one spike: the 15s mean stays under threshold.
	var alerts []Alert
	for i := 0; i < 15; i++ {
		v := 75.0
		if i == 14 {
			v = 200
		}
		alerts = append(alerts, e.Ingest(1, sensor.VitalSample{
			Time: t0.Add(time.Duration(i) * time.Second), Kind: sensor.VitalHeartRate, Value: v,
		})...)
	}
	if len(alerts) != 0 {
		t.Fatalf("single spike alerted: %v", alerts)
	}
}

func TestAlertEngineCooldown(t *testing.T) {
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	alerts := ingestSteady(e, 1, sensor.VitalHeartRate, 170, t0, 45)
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts in 45s despite 1m cooldown", len(alerts))
	}
	// After the cooldown expires a persistent condition re-alerts.
	more := ingestSteady(e, 1, sensor.VitalHeartRate, 170, t0.Add(2*time.Minute), 5)
	if len(more) != 1 {
		t.Fatalf("re-alert after cooldown: %d", len(more))
	}
}

func TestAlertEnginePerPatientIsolation(t *testing.T) {
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	_ = ingestSteady(e, 1, sensor.VitalHeartRate, 170, t0, 20)
	alerts := ingestSteady(e, 2, sensor.VitalHeartRate, 170, t0, 20)
	if len(alerts) != 1 {
		t.Fatalf("patient 2 alerts = %d (cooldown leaked across patients?)", len(alerts))
	}
	total := e.Alerts()
	if len(total) != 2 {
		t.Fatalf("total alerts = %d", len(total))
	}
}

func TestHypoxemiaRule(t *testing.T) {
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	alerts := ingestSteady(e, 1, sensor.VitalSpO2, 85, t0, 20)
	if len(alerts) == 0 || alerts[0].Rule != "hypoxemia" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestOverlayMetrics(t *testing.T) {
	s := NewStore()
	s.RecordVital(1, sensor.VitalSample{Time: t0, Kind: sensor.VitalHeartRate, Value: 80})
	s.RecordVital(1, sensor.VitalSample{Time: t0, Kind: sensor.VitalSpO2, Value: 97})
	m := s.OverlayMetrics(1)
	if m["heart_rate"] != 80 || m["spo2"] != 97 {
		t.Fatalf("metrics = %v", m)
	}
	if _, ok := m["systolic_bp"]; ok {
		t.Fatal("absent vital reported")
	}
}

func TestEndToEndWithSimulatedVitals(t *testing.T) {
	// Wire the sensor simulator to the alert engine: an injected episode
	// must produce an alert within a clinically useful delay.
	s := NewStore()
	e := NewAlertEngine(s, StandardRules())
	v := sensor.NewVitals(77)
	var first *Alert
	episodeStart := t0.Add(60 * time.Second)
	v.StartEpisode(episodeStart, 2*time.Minute)
	for i := 0; i < 300 && first == nil; i++ {
		now := t0.Add(time.Duration(i) * time.Second)
		for _, samp := range v.Sample(now) {
			if alerts := e.Ingest(42, samp); len(alerts) > 0 && first == nil {
				a := alerts[0]
				first = &a
			}
		}
	}
	if first == nil {
		t.Fatal("episode never alerted")
	}
	latency := first.Time.Sub(episodeStart)
	if latency < 0 {
		t.Fatalf("alert before episode at %v", first.Time)
	}
	if latency > 30*time.Second {
		t.Fatalf("alert latency %v too slow", latency)
	}
}
