// Package ehr implements the §3.3 healthcare substrate: an electronic
// health record store over the storage engine, vitals ingestion into the
// time-series store, and a streaming alert engine with hysteresis whose
// output feeds AR overlays ("in-situ display of relevant information when
// required"). Ground-truth anomaly labels from the sensor simulator let the
// E8 experiment measure alert latency, precision, and recall.
package ehr

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"arbd/internal/sensor"
	"arbd/internal/storage"
)

// EHR errors.
var ErrNoPatient = errors.New("ehr: patient not found")

// Patient is one health record.
type Patient struct {
	ID          uint64   `json:"id"`
	Name        string   `json:"name"`
	Age         int      `json:"age"`
	Conditions  []string `json:"conditions,omitempty"`
	Medications []string `json:"medications,omitempty"`
	Allergies   []string `json:"allergies,omitempty"`
}

// Store persists patients in the KV engine and vitals in the time-series
// store. Safe for concurrent use.
type Store struct {
	kv  *storage.KV
	ts  *storage.TSDB
	mu  sync.RWMutex
	ids []uint64
}

// NewStore returns an empty EHR store.
func NewStore() *Store {
	return &Store{kv: storage.NewKV(), ts: storage.NewTSDB()}
}

func patientKey(id uint64) []byte {
	return []byte(fmt.Sprintf("patient/%016d", id))
}

func seriesName(id uint64, kind sensor.VitalKind) string {
	return fmt.Sprintf("vitals/%d/%s", id, kind)
}

// PutPatient stores or replaces a record.
func (s *Store) PutPatient(p Patient) error {
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("ehr: encoding patient: %w", err)
	}
	isNew := !s.kv.Has(patientKey(p.ID))
	if err := s.kv.Put(patientKey(p.ID), data); err != nil {
		return err
	}
	if isNew {
		s.mu.Lock()
		s.ids = append(s.ids, p.ID)
		s.mu.Unlock()
	}
	return nil
}

// GetPatient fetches a record.
func (s *Store) GetPatient(id uint64) (Patient, error) {
	data, err := s.kv.Get(patientKey(id))
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return Patient{}, fmt.Errorf("%w: %d", ErrNoPatient, id)
		}
		return Patient{}, err
	}
	var p Patient
	if err := json.Unmarshal(data, &p); err != nil {
		return Patient{}, fmt.Errorf("ehr: decoding patient %d: %w", id, err)
	}
	return p, nil
}

// PatientIDs returns all patient IDs in insertion order.
func (s *Store) PatientIDs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]uint64(nil), s.ids...)
}

// RecordVital appends a vitals sample for the patient.
func (s *Store) RecordVital(patientID uint64, v sensor.VitalSample) {
	s.ts.Append(seriesName(patientID, v.Kind), storage.Point{Time: v.Time, Value: v.Value})
}

// VitalsWindow returns samples of one vital in [from, to].
func (s *Store) VitalsWindow(patientID uint64, kind sensor.VitalKind, from, to time.Time) ([]storage.Point, error) {
	return s.ts.Query(seriesName(patientID, kind), from, to)
}

// LatestVital returns the most recent sample of one vital.
func (s *Store) LatestVital(patientID uint64, kind sensor.VitalKind) (storage.Point, error) {
	return s.ts.Latest(seriesName(patientID, kind))
}

// AlertRule fires when the windowed mean of a vital crosses a bound.
type AlertRule struct {
	Name   string
	Kind   sensor.VitalKind
	Window time.Duration
	// Above fires when mean > Above (use with High=true); Below fires when
	// mean < Below. Zero disables that side.
	Above float64
	Below float64
	// Cooldown suppresses re-alerts for the same (patient, rule).
	Cooldown time.Duration
}

// StandardRules returns clinically-plausible defaults matching the anomaly
// episodes the sensor simulator injects.
func StandardRules() []AlertRule {
	return []AlertRule{
		{Name: "tachycardia", Kind: sensor.VitalHeartRate, Window: 15 * time.Second, Above: 130, Cooldown: time.Minute},
		{Name: "bradycardia", Kind: sensor.VitalHeartRate, Window: 15 * time.Second, Below: 40, Cooldown: time.Minute},
		{Name: "hypoxemia", Kind: sensor.VitalSpO2, Window: 15 * time.Second, Below: 91, Cooldown: time.Minute},
	}
}

// Alert is one fired alert.
type Alert struct {
	Time      time.Time
	PatientID uint64
	Rule      string
	Value     float64 // windowed mean that triggered
}

// AlertEngine evaluates rules over per-patient sliding windows as samples
// arrive. Safe for concurrent use across patients; per-patient streams are
// expected in time order (the usual per-device guarantee).
type AlertEngine struct {
	store *Store
	rules []AlertRule

	mu       sync.Mutex
	lastFire map[string]time.Time // patient/rule -> last alert
	alerts   []Alert
}

// NewAlertEngine returns an engine over the store with the given rules.
func NewAlertEngine(store *Store, rules []AlertRule) *AlertEngine {
	return &AlertEngine{store: store, rules: rules, lastFire: make(map[string]time.Time)}
}

// Ingest records the sample and evaluates rules, returning any alerts fired
// by this sample.
func (e *AlertEngine) Ingest(patientID uint64, v sensor.VitalSample) []Alert {
	e.store.RecordVital(patientID, v)
	var fired []Alert
	for _, r := range e.rules {
		if r.Kind != v.Kind {
			continue
		}
		pts, err := e.store.VitalsWindow(patientID, r.Kind, v.Time.Add(-r.Window), v.Time)
		if err != nil || len(pts) == 0 {
			continue
		}
		var sum float64
		for _, p := range pts {
			sum += p.Value
		}
		mean := sum / float64(len(pts))
		trigger := (r.Above != 0 && mean > r.Above) || (r.Below != 0 && mean < r.Below)
		if !trigger {
			continue
		}
		key := fmt.Sprintf("%d/%s", patientID, r.Name)
		e.mu.Lock()
		if last, ok := e.lastFire[key]; ok && v.Time.Sub(last) < r.Cooldown {
			e.mu.Unlock()
			continue
		}
		e.lastFire[key] = v.Time
		a := Alert{Time: v.Time, PatientID: patientID, Rule: r.Name, Value: mean}
		e.alerts = append(e.alerts, a)
		e.mu.Unlock()
		fired = append(fired, a)
	}
	return fired
}

// Alerts returns all alerts fired so far.
func (e *AlertEngine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Alert(nil), e.alerts...)
}

// OverlayMetrics derives the metric map the ARML interpreter consumes for a
// patient's live overlay: latest value of each vital.
func (s *Store) OverlayMetrics(patientID uint64) map[string]float64 {
	out := make(map[string]float64, 3)
	for _, kind := range []sensor.VitalKind{sensor.VitalHeartRate, sensor.VitalSpO2, sensor.VitalSystolicBP} {
		if p, err := s.LatestVital(patientID, kind); err == nil {
			out[kind.String()] = p.Value
		}
	}
	return out
}
