package obs

import (
	"sync"
	"testing"
	"time"

	"arbd/internal/metrics"
)

// TestStageNames pins the stage enum's names (the slow-trace JSON keys).
func TestStageNames(t *testing.T) {
	want := []string{"admission", "queue", "render", "encode", "outbox", "write"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(-1).String() != "unknown" || NumStages.String() != "unknown" {
		t.Fatal("out-of-range stages must stringify as unknown")
	}
}

// TestFlightSpansDeterministic drives one flight with caller-supplied
// timestamps and checks the arithmetic exactly: the span sum equals Total,
// each stage gets its window, and blame picks the widest stage.
func TestFlightSpansDeterministic(t *testing.T) {
	r := NewRecorder(metrics.NewRegistry(), Options{RingSize: 8})
	at := time.Now()
	fl := r.Begin(7, at.Add(-20*time.Millisecond))
	fl.SetSeq(3)
	fl.MarkAt(StageQueue, at.Add(10*time.Millisecond))
	fl.MarkAt(StageWrite, at.Add(30*time.Millisecond))
	fl.FinishAt(at.Add(30 * time.Millisecond))

	recs := r.Records(nil)
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Session != 7 || rec.Seq != 3 {
		t.Fatalf("identity = (%d, %d), want (7, 3)", rec.Session, rec.Seq)
	}
	if got, want := time.Duration(rec.Total), 50*time.Millisecond; got != want {
		t.Fatalf("total = %v, want %v", got, want)
	}
	// The marks between Begin and the first MarkAt use real clock reads, but
	// the drift cancels across adjacent spans: the sum is exact.
	if rec.SpanSum() != rec.Total {
		t.Fatalf("span sum %v != total %v", time.Duration(rec.SpanSum()), time.Duration(rec.Total))
	}
	if ad := time.Duration(rec.Spans[StageAdmission]); ad < 20*time.Millisecond {
		t.Fatalf("admission span %v, want >= 20ms (Begin backdated)", ad)
	}
	if wr := time.Duration(rec.Spans[StageWrite]); wr != 20*time.Millisecond {
		t.Fatalf("write span %v, want exactly 20ms", wr)
	}
	if b := rec.Blame(); b != StageAdmission {
		t.Fatalf("blame = %v, want admission", b)
	}
}

// TestMarkSplit checks the externally-measured split: the second stage gets
// the supplied share, the first the (clamped) remainder.
func TestMarkSplit(t *testing.T) {
	r := NewRecorder(metrics.NewRegistry(), Options{RingSize: 8})
	fl := r.Begin(1, time.Now())
	fl.MarkSplit(StageQueue, StageRender, 5*time.Millisecond)
	fl.FinishAt(time.Now())
	rec := r.Records(nil)[0]
	if got := time.Duration(rec.Spans[StageRender]); got != 5*time.Millisecond {
		t.Fatalf("render span = %v, want 5ms", got)
	}
	// The real window since Begin is near zero, so the remainder clamps.
	if q := rec.Spans[StageQueue]; q < 0 {
		t.Fatalf("queue span clamped below zero: %d", q)
	}
}

// TestFinishOutcomes checks the three non-delivery settlements: flags, the
// stage their wait folds into, and the dropped counter.
func TestFinishOutcomes(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRecorder(reg, Options{RingSize: 8})

	r.Begin(1, time.Now()).FinishShed()
	r.Begin(2, time.Now()).FinishDropped()
	r.Begin(3, time.Now()).FinishError()

	byID := map[uint64]FrameRecord{}
	for _, rec := range r.Records(nil) {
		byID[rec.Session] = rec
	}
	if len(byID) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(byID))
	}
	if !byID[1].Shed || byID[1].Dropped || byID[1].Err {
		t.Fatalf("shed record flags = %+v", byID[1])
	}
	if !byID[2].Dropped || byID[2].Shed {
		t.Fatalf("dropped record flags = %+v", byID[2])
	}
	if !byID[3].Err {
		t.Fatalf("error record flags = %+v", byID[3])
	}
	if got := reg.Counter("obs.frames.recorded").Value(); got != 3 {
		t.Fatalf("obs.frames.recorded = %d, want 3", got)
	}
	if got := reg.Counter("obs.frames.dropped").Value(); got != 1 {
		t.Fatalf("obs.frames.dropped = %d, want 1", got)
	}
}

// TestRecorderWraparoundConcurrent hammers a small ring with concurrent
// writers for many times its capacity and checks the seqlock holds: every
// readable record is internally consistent (the Total doubles as a per-record
// checksum over Spans[0]), the ring never yields more than its capacity, the
// exemplar store stays bounded, and no commit was lost without being counted.
func TestRecorderWraparoundConcurrent(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewRecorder(reg, Options{RingSize: 64, SlowCapacity: 8})
	const writers = 8
	const perWriter = 500

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		buf := make([]FrameRecord, 0, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range r.Records(buf[:0]) {
				if rec.Total != rec.Spans[0] {
					t.Errorf("torn read: total %d != checksum span %d", rec.Total, rec.Spans[0])
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				marker := int64(g)*1_000_000 + int64(i) + 1
				rec := FrameRecord{Session: uint64(g), Seq: uint64(i)}
				rec.Spans[0] = marker
				rec.Total = marker
				r.commit(&rec)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	recs := r.Records(nil)
	if len(recs) == 0 || len(recs) > 64 {
		t.Fatalf("ring yields %d records, want 1..64", len(recs))
	}
	for _, rec := range recs {
		if rec.Total != rec.Spans[0] {
			t.Fatalf("post-race torn record: %+v", rec)
		}
	}

	// The exemplar store stays at its bound no matter how many latch.
	for i := 0; i < 100; i++ {
		fl := r.Begin(9, time.Now())
		fl.FinishAt(time.Now())
	}
	if got := len(r.Slow(0)); got > 8 {
		t.Fatalf("slow store holds %d exemplars, bound is 8", got)
	}
	if got := len(r.Slow(3)); got > 3 {
		t.Fatalf("Slow(3) returned %d records", got)
	}
}

// TestRecorderZeroAlloc pins the hot path's allocation budget: a full
// Begin → mark → FinishAt cycle must not allocate in steady state (the
// flight pool absorbs the only allocation at warmup).
func TestRecorderZeroAlloc(t *testing.T) {
	r := NewRecorder(metrics.NewRegistry(), Options{})
	// Warm the pool and the threshold cache.
	for i := 0; i < 64; i++ {
		fl := r.Begin(1, time.Now())
		fl.MarkSplit(StageQueue, StageRender, time.Microsecond)
		fl.Mark(StageEncode)
		fl.FinishAt(time.Now())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		fl := r.Begin(1, time.Now())
		fl.SetSeq(1)
		fl.MarkSplit(StageQueue, StageRender, time.Microsecond)
		fl.Mark(StageEncode)
		now := time.Now()
		fl.MarkAt(StageOutbox, now)
		fl.MarkAt(StageWrite, now)
		fl.FinishAt(now)
	})
	// A GC sweep mid-run can clear the flight pool and cost one allocation;
	// anything beyond that noise is a regression.
	if allocs > 0.1 {
		t.Fatalf("recorder hot path allocates %.3f per frame, want 0", allocs)
	}
}

// TestSlowThresholdRefresh checks the rolling-p99 latch: after the refresh
// window passes, the cached threshold tracks the totals histogram instead of
// staying at its cold-start zero.
func TestSlowThresholdRefresh(t *testing.T) {
	r := NewRecorder(metrics.NewRegistry(), Options{RingSize: 8})
	at := time.Now()
	// First settle refreshes (refreshedAt starts at zero) and latches.
	fl := r.Begin(1, at.Add(-time.Millisecond))
	fl.FinishAt(at)
	if r.SlowThreshold() <= 0 {
		t.Fatalf("threshold = %v after first settle, want > 0", r.SlowThreshold())
	}
	if len(r.Slow(0)) == 0 {
		t.Fatal("cold-start settle must latch an exemplar")
	}
}
