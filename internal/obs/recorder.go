// Package obs is the platform's observability plane: a zero-alloc frame
// flight recorder that captures per-stage span breakdowns for every frame a
// node serves, a bounded slow-frame exemplar store latching full traces for
// frames past a rolling p99, a Prometheus text encoder over
// metrics.Registry, and an HTTP introspection plane (served by
// `arbd-server -obs`) exposing all of it. Traces are node-local: a router
// and the shard behind it each record their own half of a push's journey,
// joined offline by (session, seq) — no wire or protocol change.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"arbd/internal/metrics"
)

// Stage indexes one span of a frame's flight through the serving path.
type Stage int

const (
	// StageAdmission is pacing delay: the time an owed tick waited for the
	// previous frame to complete before its submission (zero for frames
	// submitted directly on their tick).
	StageAdmission Stage = iota
	// StageQueue is scheduler queue wait: submit until a worker picked the
	// job up (including dispatch overhead).
	StageQueue
	// StageRender is the core render duration (core.Frame.Elapsed).
	StageRender
	// StageEncode is wire encoding under the session lock.
	StageEncode
	// StageOutbox is time queued on the connection's push outbox.
	StageOutbox
	// StageWrite is the vectored connection write (shared across a batch).
	StageWrite

	// NumStages sizes per-record span arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"admission", "queue", "render", "encode", "outbox", "write",
}

// String names the stage ("admission", "queue", ...).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// FrameRecord is one completed frame flight: identity, wall-clock start,
// per-stage spans, and outcome flags. Values, not pointers, flow through
// the ring and the exemplar store so records never alias live state.
type FrameRecord struct {
	Session uint64
	Seq     uint64
	Start   int64            // wall clock, Unix nanoseconds
	Spans   [NumStages]int64 // nanoseconds per stage
	Total   int64            // nanoseconds, start to settlement
	Dropped bool             // shed by an outbox (backpressure) before the write
	Shed    bool             // shed by the scheduler (deadline)
	Err     bool             // render error; no push produced
}

// SpanSum returns the sum of all stage spans in nanoseconds.
func (r *FrameRecord) SpanSum() int64 {
	var sum int64
	for _, s := range r.Spans {
		sum += s
	}
	return sum
}

// Blame returns the stage with the largest span.
func (r *FrameRecord) Blame() Stage {
	best := Stage(0)
	for s := Stage(1); s < NumStages; s++ {
		if r.Spans[s] > r.Spans[best] {
			best = s
		}
	}
	return best
}

// slot is one ring entry guarded by a try-lock nobody ever blocks on: a
// writer that fails the TryLock has been lapped by a concurrent commit (or
// raced a reader) and drops its record rather than waiting; a reader that
// fails it skips the slot mid-write. Uncontended, a commit costs two atomic
// ops — and never a blocked goroutine on the frame path.
type slot struct {
	mu  sync.Mutex
	set atomic.Bool // the slot has ever been written (readers skip empties)
	rec FrameRecord
	// pad keeps adjacent slots off one cache line under concurrent commits.
	_ [24]byte
}

// Recorder defaults.
const (
	defaultRingSize = 4096
	defaultSlowCap  = 64
	// slowRefreshEvery bounds how often the rolling p99 threshold is
	// recomputed from the totals histogram: a locked bucket scan at ~4 Hz
	// instead of per frame.
	slowRefreshEvery = 250 * time.Millisecond
)

// Options tunes a Recorder. Zero values take the defaults.
type Options struct {
	// RingSize is the flight-record ring capacity, rounded up to a power of
	// two (default 4096).
	RingSize int
	// SlowCapacity bounds the slow-frame exemplar store (default 64).
	SlowCapacity int
}

// Recorder is a per-engine frame flight recorder: a fixed-size ring of the
// most recent FrameRecords plus a bounded exemplar store of slow outliers.
// The hot path — Begin, the Mark* calls, Finish — performs no steady-state
// allocation and never blocks: flights come from a pool and records are
// copied into pre-allocated slots under per-slot try-locks that drop a
// colliding commit instead of waiting.
type Recorder struct {
	slots []slot
	mask  uint64
	cur   atomic.Uint64

	pool sync.Pool

	// totals feeds the rolling p99; threshold caches its p99 in
	// nanoseconds, refreshed at most every slowRefreshEvery. A zero
	// threshold (cold start) latches everything — the store is bounded, so
	// early over-latching only warms it up.
	totals      *metrics.Histogram
	threshold   atomic.Int64
	refreshedAt atomic.Int64 // unix nanos of the last threshold refresh

	recorded *metrics.Counter
	slowCtr  *metrics.Counter
	dropped  *metrics.Counter

	// slow is the exemplar ring: a mutex is fine here, only frames already
	// classified slow (or dropped) take it.
	slowMu   sync.Mutex
	slow     []FrameRecord
	slowNext int
	slowLen  int
}

// NewRecorder builds a recorder. Its instruments (obs.frame.total,
// obs.frames.recorded, obs.frames.slow, obs.frames.dropped) register in
// reg; reg may be nil.
func NewRecorder(reg *metrics.Registry, opts Options) *Recorder {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	size := opts.RingSize
	if size <= 0 {
		size = defaultRingSize
	}
	// Round up to a power of two so the cursor masks instead of dividing.
	n := 1
	for n < size {
		n <<= 1
	}
	slowCap := opts.SlowCapacity
	if slowCap <= 0 {
		slowCap = defaultSlowCap
	}
	r := &Recorder{
		slots:    make([]slot, n),
		mask:     uint64(n - 1),
		totals:   reg.Histogram("obs.frame.total"),
		recorded: reg.Counter("obs.frames.recorded"),
		slowCtr:  reg.Counter("obs.frames.slow"),
		dropped:  reg.Counter("obs.frames.dropped"),
		slow:     make([]FrameRecord, slowCap),
	}
	r.pool.New = func() any { return new(Flight) }
	return r
}

// Begin starts a flight for one frame of session, whose clock began at
// `at` — an owed tick's original fire time, or now for a frame submitted
// directly on its tick. The gap between at and now is recorded as the
// admission span. The returned flight must be settled by exactly one
// Finish* call; it is pooled and must not be touched afterwards.
//
//arbd:hotpath
func (r *Recorder) Begin(session uint64, at time.Time) *Flight {
	fl := r.pool.Get().(*Flight)
	now := time.Now()
	fl.rec = r
	fl.start = at
	fl.mark = now
	fl.record = FrameRecord{Session: session, Start: at.UnixNano()}
	fl.record.Spans[StageAdmission] = now.Sub(at).Nanoseconds()
	return fl
}

// commit publishes one record into the ring. Slot claims collide only when
// writers lap the whole ring simultaneously (or a scrape is copying this
// slot); the failed TryLock then drops this record rather than blocking a
// frame-path goroutine.
//
//arbd:hotpath
func (r *Recorder) commit(rec *FrameRecord) {
	s := &r.slots[r.cur.Add(1)&r.mask]
	if !s.mu.TryLock() {
		return
	}
	s.rec = *rec
	s.set.Store(true)
	s.mu.Unlock()
}

// latch appends one record to the slow exemplar ring (cold path).
func (r *Recorder) latch(rec *FrameRecord) {
	r.slowCtr.Inc()
	r.slowMu.Lock()
	r.slow[r.slowNext] = *rec
	r.slowNext = (r.slowNext + 1) % len(r.slow)
	if r.slowLen < len(r.slow) {
		r.slowLen++
	}
	r.slowMu.Unlock()
}

// settleDelivered runs the delivered-frame bookkeeping: observe the total,
// refresh the cached p99 threshold if stale, latch an exemplar when slow.
//
//arbd:hotpath
func (r *Recorder) settleDelivered(rec *FrameRecord, now time.Time) {
	total := time.Duration(rec.Total)
	r.totals.Observe(total)
	last := r.refreshedAt.Load()
	if now.UnixNano()-last >= int64(slowRefreshEvery) &&
		r.refreshedAt.CompareAndSwap(last, now.UnixNano()) {
		// One winner per window recomputes; the quantile scan is a bounded
		// bucket walk under the histogram's own lock.
		r.threshold.Store(int64(r.totals.Quantile(0.99)))
	}
	if rec.Total >= r.threshold.Load() {
		r.latch(rec)
	}
}

// Records copies the ring's current contents into out (newest last,
// unordered across a wrap), skipping slots mid-write. Pass a slice with
// capacity for RingSize records to avoid growth.
func (r *Recorder) Records(out []FrameRecord) []FrameRecord {
	for i := range r.slots {
		s := &r.slots[i]
		if !s.set.Load() || !s.mu.TryLock() {
			continue
		}
		rec := s.rec
		s.mu.Unlock()
		out = append(out, rec)
	}
	return out
}

// Slow returns up to n slow-frame exemplars, newest first. n <= 0 returns
// all latched exemplars.
func (r *Recorder) Slow(n int) []FrameRecord {
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	if n <= 0 || n > r.slowLen {
		n = r.slowLen
	}
	out := make([]FrameRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.slow[(r.slowNext-i+len(r.slow))%len(r.slow)])
	}
	return out
}

// SlowThreshold reports the current rolling-p99 latch threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	return time.Duration(r.threshold.Load())
}

// Flight is one frame's in-progress trace. It is owned by exactly one
// goroutine at a time (ownership travels with the frame: pacer tick →
// scheduler worker → outbox writer) and returns to the recorder's pool on
// Finish — callers must drop every reference after settling it.
type Flight struct {
	rec    *Recorder
	start  time.Time
	mark   time.Time
	record FrameRecord
}

// SetSeq stamps the push sequence number once it is assigned (in the visit
// callback, after the stream's counter increments).
//
//arbd:hotpath
func (fl *Flight) SetSeq(seq uint64) { fl.record.Seq = seq }

// Mark closes the window since the previous mark as `stage`.
//
//arbd:hotpath
func (fl *Flight) Mark(stage Stage) {
	now := time.Now()
	fl.record.Spans[stage] += now.Sub(fl.mark).Nanoseconds()
	fl.mark = now
}

// MarkAt is Mark with a caller-supplied timestamp, so a batch settling
// many flights pays one time.Now for all of them.
//
//arbd:hotpath
func (fl *Flight) MarkAt(stage Stage, now time.Time) {
	fl.record.Spans[stage] += now.Sub(fl.mark).Nanoseconds()
	fl.mark = now
}

// MarkSplit closes the window since the previous mark as two stages: b
// takes bPart of it (measured externally — e.g. the render duration the
// core reports), a takes the remainder, clamped at zero.
//
//arbd:hotpath
func (fl *Flight) MarkSplit(a, b Stage, bPart time.Duration) {
	now := time.Now()
	win := now.Sub(fl.mark)
	rest := win - bPart
	if rest < 0 {
		rest = 0
	}
	fl.record.Spans[a] += rest.Nanoseconds()
	fl.record.Spans[b] += bPart.Nanoseconds()
	fl.mark = now
}

// FinishAt settles a delivered frame: the trace ends at `end` (the write
// completion), so Total equals the span sum exactly (modulo queue
// clamping). The flight returns to the pool.
//
//arbd:hotpath
func (fl *Flight) FinishAt(end time.Time) {
	fl.record.Total = end.Sub(fl.start).Nanoseconds()
	rec := fl.rec
	rec.recorded.Inc()
	rec.commit(&fl.record)
	rec.settleDelivered(&fl.record, end)
	rec.pool.Put(fl)
}

// FinishDropped settles a frame whose push was dropped under backpressure
// (or lost to a dying connection): the time since the last mark folds into
// the outbox span.
//
//arbd:hotpath
func (fl *Flight) FinishDropped() {
	now := time.Now()
	fl.record.Spans[StageOutbox] += now.Sub(fl.mark).Nanoseconds()
	fl.record.Total = now.Sub(fl.start).Nanoseconds()
	fl.record.Dropped = true
	rec := fl.rec
	rec.recorded.Inc()
	rec.dropped.Inc()
	rec.commit(&fl.record)
	rec.pool.Put(fl)
}

// FinishShed settles a frame the scheduler shed: the wait that killed it
// folds into the queue span.
//
//arbd:hotpath
func (fl *Flight) FinishShed() {
	now := time.Now()
	fl.record.Spans[StageQueue] += now.Sub(fl.mark).Nanoseconds()
	fl.record.Total = now.Sub(fl.start).Nanoseconds()
	fl.record.Shed = true
	rec := fl.rec
	rec.recorded.Inc()
	rec.commit(&fl.record)
	rec.pool.Put(fl)
}

// FinishError settles a frame whose render failed (no push produced).
//
//arbd:hotpath
func (fl *Flight) FinishError() {
	now := time.Now()
	fl.record.Total = now.Sub(fl.start).Nanoseconds()
	fl.record.Err = true
	rec := fl.rec
	rec.recorded.Inc()
	rec.commit(&fl.record)
	rec.pool.Put(fl)
}
