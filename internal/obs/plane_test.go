package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arbd/internal/metrics"
)

func planeFixture() (*Plane, *metrics.Registry, *Recorder) {
	reg := metrics.NewRegistry()
	reg.Counter("server.frames.done").Add(5)
	rec := NewRecorder(reg, Options{RingSize: 16, SlowCapacity: 4})
	at := time.Now()
	fl := rec.Begin(11, at.Add(-5*time.Millisecond))
	fl.SetSeq(2)
	fl.MarkAt(StageWrite, at)
	fl.FinishAt(at)
	p := NewPlane(PlaneConfig{
		Role:     "shard",
		Node:     3,
		Registry: reg,
		Recorder: rec,
		Sessions: func() []SessionSummary {
			return []SessionSummary{{ID: 11, Frames: 9, Overruns: 1, Level: "full"}}
		},
		Streams: func() []StreamSummary {
			return []StreamSummary{{Session: 11, IntervalMS: 33, Delta: true, Pushes: 2}}
		},
		Load: func() (time.Duration, int64) { return 7 * time.Millisecond, 123 },
	})
	return p, reg, rec
}

func get(t *testing.T, p *Plane, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	p.Mux().ServeHTTP(w, req)
	return w
}

// TestPlaneMetricsEndpoint checks /metrics: content type, the registry's
// instruments present, and the load signal republished as gauges at scrape
// time.
func TestPlaneMetricsEndpoint(t *testing.T) {
	p, _, _ := planeFixture()
	w := get(t, p, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"arbd_server_frames_done 5",
		"arbd_obs_frames_recorded 1",
		"arbd_core_load_flush_p99_seconds 0.007",
		"arbd_core_load_backlog 123",
		`arbd_obs_frame_total_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestPlaneDebugEndpoints checks the JSON surfaces: typed metrics, session
// and stream summaries, and the slow-trace records with per-stage spans.
func TestPlaneDebugEndpoints(t *testing.T) {
	p, _, _ := planeFixture()

	var m struct {
		Role        string `json:"role"`
		Node        uint64 `json:"node"`
		Instruments []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"instruments"`
	}
	if err := json.Unmarshal(get(t, p, "/debug/arbd/metrics").Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Role != "shard" || m.Node != 3 || len(m.Instruments) == 0 {
		t.Fatalf("metrics json = %+v", m)
	}

	var sess struct {
		Count    int              `json:"count"`
		Sessions []SessionSummary `json:"sessions"`
	}
	if err := json.Unmarshal(get(t, p, "/debug/arbd/sessions").Body.Bytes(), &sess); err != nil {
		t.Fatal(err)
	}
	if sess.Count != 1 || sess.Sessions[0].ID != 11 || sess.Sessions[0].Level != "full" {
		t.Fatalf("sessions json = %+v", sess)
	}

	var str struct {
		Streams []StreamSummary `json:"streams"`
	}
	if err := json.Unmarshal(get(t, p, "/debug/arbd/streams").Body.Bytes(), &str); err != nil {
		t.Fatal(err)
	}
	if len(str.Streams) != 1 || !str.Streams[0].Delta || str.Streams[0].IntervalMS != 33 {
		t.Fatalf("streams json = %+v", str)
	}

	var slow struct {
		Role    string      `json:"role"`
		Records []TraceJSON `json:"records"`
	}
	if err := json.Unmarshal(get(t, p, "/debug/arbd/slow?n=4").Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Records) != 1 {
		t.Fatalf("%d slow records, want 1", len(slow.Records))
	}
	tr := slow.Records[0]
	if tr.Session != 11 || tr.Seq != 2 {
		t.Fatalf("trace identity = (%d, %d)", tr.Session, tr.Seq)
	}
	if tr.TotalUS < 5000 {
		t.Fatalf("trace total %vµs, want >= 5000 (backdated begin)", tr.TotalUS)
	}
	if len(tr.Spans) != int(NumStages) {
		t.Fatalf("trace has %d spans, want %d", len(tr.Spans), NumStages)
	}
	var sum float64
	for _, v := range tr.Spans {
		sum += v
	}
	if diff := sum - tr.TotalUS; diff > 1 || diff < -1 {
		t.Fatalf("span sum %vµs != total %vµs", sum, tr.TotalUS)
	}
	if tr.Blame == "" || tr.Blame == "unknown" {
		t.Fatalf("trace blame = %q", tr.Blame)
	}

	if w := get(t, p, "/debug/arbd/slow?n=bogus"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d", w.Code)
	}
}
