package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"arbd/internal/metrics"
)

// SessionSummary is one live session's health for /debug/arbd/sessions.
// Roles that own no core sessions (the router) fill only ID.
type SessionSummary struct {
	ID       uint64 `json:"id"`
	Frames   uint64 `json:"frames"`
	Overruns uint64 `json:"overruns"`
	Level    string `json:"level,omitempty"`
}

// StreamSummary is one live subscription stream for /debug/arbd/streams.
type StreamSummary struct {
	Session    uint64  `json:"session"`
	IntervalMS float64 `json:"interval_ms"`
	Delta      bool    `json:"delta"`
	Pushes     uint64  `json:"pushes"`
	AckedSeq   uint64  `json:"acked_seq"`
}

// PlaneConfig wires one node's state sources into an introspection plane.
type PlaneConfig struct {
	// Role labels the node in responses ("standalone", "router", "shard").
	Role string
	// Node is the node's identity (shard ring member ID; zero elsewhere).
	Node uint64
	// Registry backs /metrics and /debug/arbd/metrics.
	Registry *metrics.Registry
	// Recorder backs /debug/arbd/slow. May be nil (no recorder: empty).
	Recorder *Recorder
	// Sessions and Streams supply the JSON summaries; nil means none.
	Sessions func() []SessionSummary
	Streams  func() []StreamSummary
	// Load, when set, reports backend pressure (p99 telemetry flush latency
	// and analytics backlog); the plane republishes it as gauges in the
	// registry at scrape time so it exports everywhere uniformly.
	Load func() (flushP99 time.Duration, backlog int64)
}

// Plane serves one node's introspection endpoints:
//
//	/metrics              Prometheus text exposition of the registry
//	/debug/arbd/metrics   typed JSON snapshot (what arbd-top consumes)
//	/debug/arbd/sessions  live session summaries
//	/debug/arbd/streams   live subscription stream summaries
//	/debug/arbd/slow?n=K  last K slow-frame exemplar traces, newest first
type Plane struct {
	cfg PlaneConfig
	mux *http.ServeMux
}

// NewPlane builds the plane and its mux.
func NewPlane(cfg PlaneConfig) *Plane {
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	p := &Plane{cfg: cfg, mux: http.NewServeMux()}
	p.mux.HandleFunc("/metrics", p.handleMetrics)
	p.mux.HandleFunc("/debug/arbd/metrics", p.handleMetricsJSON)
	p.mux.HandleFunc("/debug/arbd/sessions", p.handleSessions)
	p.mux.HandleFunc("/debug/arbd/streams", p.handleStreams)
	p.mux.HandleFunc("/debug/arbd/slow", p.handleSlow)
	return p
}

// Mux returns the plane's request mux, for serving and for folding extra
// handlers (pprof) onto the same listener.
func (p *Plane) Mux() *http.ServeMux { return p.mux }

// refreshLoad republishes the node's load signal as registry gauges so a
// scrape sees pressure the moment it asks, without a background sampler.
func (p *Plane) refreshLoad() {
	if p.cfg.Load == nil {
		return
	}
	flush, backlog := p.cfg.Load()
	p.cfg.Registry.Gauge("core.load.flush_p99_seconds").Set(flush.Seconds())
	p.cfg.Registry.Gauge("core.load.backlog").Set(float64(backlog))
}

func (p *Plane) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	p.refreshLoad()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, p.cfg.Registry)
}

// instrumentJSON is one instrument in the typed JSON snapshot.
type instrumentJSON struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value,omitempty"`   // counter, gauge
	Count  uint64  `json:"count,omitempty"`   // histogram
	MeanUS float64 `json:"mean_us,omitempty"` // histogram, microseconds
	P50US  float64 `json:"p50_us,omitempty"`  // "
	P95US  float64 `json:"p95_us,omitempty"`  // "
	P99US  float64 `json:"p99_us,omitempty"`  // "
	MaxUS  float64 `json:"max_us,omitempty"`  // "
	SumUS  float64 `json:"sum_us,omitempty"`  // "
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func (p *Plane) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	p.refreshLoad()
	snap := p.cfg.Registry.Snapshot()
	out := struct {
		Role        string           `json:"role"`
		Node        uint64           `json:"node,omitempty"`
		Instruments []instrumentJSON `json:"instruments"`
	}{Role: p.cfg.Role, Node: p.cfg.Node, Instruments: make([]instrumentJSON, 0, len(snap))}
	for _, in := range snap {
		j := instrumentJSON{Name: in.Name, Kind: in.Kind.String()}
		switch in.Kind {
		case metrics.KindCounter:
			j.Value = float64(in.Counter)
		case metrics.KindGauge:
			j.Value = in.Gauge
		case metrics.KindHistogram:
			s := in.Hist
			j.Count = s.Count
			j.MeanUS, j.P50US, j.P95US = us(s.Mean), us(s.P50), us(s.P95)
			j.P99US, j.MaxUS, j.SumUS = us(s.P99), us(s.Max), us(s.Sum)
		}
		out.Instruments = append(out.Instruments, j)
	}
	writeJSON(w, out)
}

func (p *Plane) handleSessions(w http.ResponseWriter, _ *http.Request) {
	var sessions []SessionSummary
	if p.cfg.Sessions != nil {
		sessions = p.cfg.Sessions()
	}
	writeJSON(w, struct {
		Role     string           `json:"role"`
		Node     uint64           `json:"node,omitempty"`
		Count    int              `json:"count"`
		Sessions []SessionSummary `json:"sessions"`
	}{p.cfg.Role, p.cfg.Node, len(sessions), sessions})
}

func (p *Plane) handleStreams(w http.ResponseWriter, _ *http.Request) {
	var streams []StreamSummary
	if p.cfg.Streams != nil {
		streams = p.cfg.Streams()
	}
	writeJSON(w, struct {
		Role    string          `json:"role"`
		Node    uint64          `json:"node,omitempty"`
		Count   int             `json:"count"`
		Streams []StreamSummary `json:"streams"`
	}{p.cfg.Role, p.cfg.Node, len(streams), streams})
}

// TraceJSON is one slow-frame exemplar in /debug/arbd/slow responses. Spans
// are microseconds, keyed by stage name; traces across a router and the
// shard behind it join on (session, seq).
type TraceJSON struct {
	Session     uint64             `json:"session"`
	Seq         uint64             `json:"seq"`
	Start       time.Time          `json:"start"`
	TotalUS     float64            `json:"total_us"`
	Blame       string             `json:"blame"`
	Spans       map[string]float64 `json:"spans_us"`
	Dropped     bool               `json:"dropped,omitempty"`
	Shed        bool               `json:"shed,omitempty"`
	RenderError bool               `json:"render_error,omitempty"`
}

func traceJSON(rec *FrameRecord) TraceJSON {
	t := TraceJSON{
		Session:     rec.Session,
		Seq:         rec.Seq,
		Start:       time.Unix(0, rec.Start),
		TotalUS:     float64(rec.Total) / float64(time.Microsecond),
		Blame:       rec.Blame().String(),
		Spans:       make(map[string]float64, int(NumStages)),
		Dropped:     rec.Dropped,
		Shed:        rec.Shed,
		RenderError: rec.Err,
	}
	for s := Stage(0); s < NumStages; s++ {
		t.Spans[s.String()] = float64(rec.Spans[s]) / float64(time.Microsecond)
	}
	return t
}

func (p *Plane) handleSlow(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	var recs []FrameRecord
	var threshold time.Duration
	if p.cfg.Recorder != nil {
		recs = p.cfg.Recorder.Slow(n)
		threshold = p.cfg.Recorder.SlowThreshold()
	}
	out := struct {
		Role        string      `json:"role"`
		Node        uint64      `json:"node,omitempty"`
		ThresholdUS float64     `json:"threshold_us"`
		Records     []TraceJSON `json:"records"`
	}{Role: p.cfg.Role, Node: p.cfg.Node, ThresholdUS: us(threshold),
		Records: make([]TraceJSON, 0, len(recs))}
	for i := range recs {
		out.Records = append(out.Records, traceJSON(&recs[i]))
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
