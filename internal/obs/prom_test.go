package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"arbd/internal/metrics"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.frames.done":     "arbd_server_frames_done",
		"core.load.backlog":      "arbd_core_load_backlog",
		"weird-name/with spaces": "arbd_weird_name_with_spaces",
		"0day":                   "arbd_0day",
		"already_fine":           "arbd_already_fine",
		"router.migration.pause": "arbd_router_migration_pause",
		"caps.OK.Mixed":          "arbd_caps_OK_Mixed",
		"trailing.":              "arbd_trailing_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine matches one sample line of the text exposition format: a metric
// name, an optional label set, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9.eE+-]+$`)

// TestWritePrometheusRoundTrip renders a populated registry and re-parses
// the output: every instrument appears under its sanitized name with HELP
// and TYPE lines, histograms carry quantile labels plus _sum/_count, and
// every non-comment line is a well-formed sample.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("server.frames.done").Add(42)
	reg.Gauge("core.load.backlog").Set(17.5)
	h := reg.Histogram("server.frame.latency")
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	// Parse back: TYPE declarations and samples.
	types := map[string]string{}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}

	if types["arbd_server_frames_done"] != "counter" {
		t.Fatalf("counter TYPE = %q", types["arbd_server_frames_done"])
	}
	if samples["arbd_server_frames_done"] != 42 {
		t.Fatalf("counter sample = %v, want 42", samples["arbd_server_frames_done"])
	}
	if types["arbd_core_load_backlog"] != "gauge" {
		t.Fatalf("gauge TYPE = %q", types["arbd_core_load_backlog"])
	}
	if samples["arbd_core_load_backlog"] != 17.5 {
		t.Fatalf("gauge sample = %v, want 17.5", samples["arbd_core_load_backlog"])
	}
	if types["arbd_server_frame_latency_seconds"] != "summary" {
		t.Fatalf("histogram TYPE = %q", types["arbd_server_frame_latency_seconds"])
	}
	if samples[`arbd_server_frame_latency_seconds_count`] != 100 {
		t.Fatalf("summary count = %v, want 100", samples[`arbd_server_frame_latency_seconds_count`])
	}
	// Sum of 1..100 ms = 5.05 s.
	if got := samples[`arbd_server_frame_latency_seconds_sum`]; got < 5.04 || got > 5.06 {
		t.Fatalf("summary sum = %v, want ≈5.05", got)
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		key := `arbd_server_frame_latency_seconds{quantile="` + q + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing quantile sample %s", key)
		}
		if v <= 0 || v > 0.2 {
			t.Fatalf("quantile %s = %v s, outside (0, 0.2]", q, v)
		}
	}
	// Quantiles are monotone.
	p50 := samples[`arbd_server_frame_latency_seconds{quantile="0.5"}`]
	p99 := samples[`arbd_server_frame_latency_seconds{quantile="0.99"}`]
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

// TestWritePrometheusCoversRegistry checks no instrument is skipped: every
// registered name appears in the exposition under its sanitized form.
func TestWritePrometheusCoversRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("a.counter").Inc()
	reg.Gauge("b.gauge").Set(1)
	reg.Histogram("c.hist").Observe(time.Millisecond)
	reg.Counter("server.stream.pushes")
	reg.Gauge("server.stream.pacers")

	var sb strings.Builder
	if err := WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, name := range reg.Names() {
		if !strings.Contains(text, promName(name)) {
			t.Fatalf("instrument %q (as %q) missing from exposition:\n%s", name, promName(name), text)
		}
	}
}
