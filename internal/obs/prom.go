package obs

import (
	"io"
	"strconv"
	"strings"
	"time"

	"arbd/internal/metrics"
)

// promPrefix namespaces every exported metric.
const promPrefix = "arbd_"

// promName sanitizes a registry name into a Prometheus metric name: every
// character outside [a-zA-Z0-9_] becomes '_', and the arbd_ namespace is
// prepended ("server.frame.queue_wait" → "arbd_server_frame_queue_wait").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		// Digits are fine anywhere here: the prefix guarantees the metric
		// name never starts with one.
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// seconds renders a duration as a float64 second count.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WritePrometheus renders every instrument in reg in Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as summaries with 0.5/0.95/0.99 quantile labels plus
// _sum and _count series. Histogram values are durations and export in
// seconds with a _seconds name suffix. Instruments come from the typed
// Registry.Snapshot — nothing here parses Dump output.
func WritePrometheus(w io.Writer, reg *metrics.Registry) error {
	var b strings.Builder
	for _, in := range reg.Snapshot() {
		name := promName(in.Name)
		switch in.Kind {
		case metrics.KindCounter:
			b.WriteString("# HELP " + name + " Counter " + in.Name + "\n")
			b.WriteString("# TYPE " + name + " counter\n")
			b.WriteString(name + " " + strconv.FormatInt(in.Counter, 10) + "\n")
		case metrics.KindGauge:
			b.WriteString("# HELP " + name + " Gauge " + in.Name + "\n")
			b.WriteString("# TYPE " + name + " gauge\n")
			b.WriteString(name + " " + strconv.FormatFloat(in.Gauge, 'g', -1, 64) + "\n")
		case metrics.KindHistogram:
			name += "_seconds"
			s := in.Hist
			b.WriteString("# HELP " + name + " Latency summary " + in.Name + "\n")
			b.WriteString("# TYPE " + name + " summary\n")
			b.WriteString(name + `{quantile="0.5"} ` + seconds(s.P50) + "\n")
			b.WriteString(name + `{quantile="0.95"} ` + seconds(s.P95) + "\n")
			b.WriteString(name + `{quantile="0.99"} ` + seconds(s.P99) + "\n")
			b.WriteString(name + "_sum " + seconds(s.Sum) + "\n")
			b.WriteString(name + "_count " + strconv.FormatUint(s.Count, 10) + "\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
