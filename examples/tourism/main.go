// Tourism (§3.2): a tourist explores an unfamiliar city; the platform fuses
// GPS+IMU+vision for registration, labels landmarks through walls with
// x-ray styling, and the privacy gate releases only geo-indistinguishable
// locations to the backend.
package main

import (
	"fmt"
	"log"
	"time"

	"arbd"
	"arbd/internal/sensor"
	"arbd/internal/tracking"
)

func main() {
	center := arbd.Point{Lat: 22.3364, Lon: 114.2655}
	platform, err := arbd.New(arbd.Config{
		Seed:            21,
		City:            arbd.CityConfig{Center: center, RadiusM: 2500, NumPOIs: 2000, TallRatio: 0.25},
		LocationEpsilon: 0.02, // geo-indistinguishability: ~100 m expected noise
		PrivacyBudget:   50,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Start(); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()

	session := platform.NewSession()
	walker := arbd.NewWalker(arbd.WalkerConfig{Center: center, RadiusM: 600, Seed: 21})
	gps := sensor.NewGPS(21, 6)
	imu := sensor.NewIMU(21)
	cam := sensor.NewCamera(sensor.CameraConfig{Seed: 21})

	start := time.Now()
	var regErr tracking.RegError
	frames := 0
	xray := 0
	const steps = 300 // 30 s at 10 Hz
	for i := 0; i < steps; i++ {
		now := start.Add(time.Duration(i) * 100 * time.Millisecond)
		truth := walker.Step(100 * time.Millisecond)
		session.OnIMU(imu.Sample(now, truth, 100*time.Millisecond))
		if i%10 == 0 {
			if err := session.OnGPS(gps.Fix(now, truth.Position)); err != nil {
				log.Fatal(err)
			}
		}
		if i%3 == 0 { // vision corrections from recognised facades
			near := platform.POIs().QueryRadius(truth.Position, 160, 0)
			session.OnVision(now, cam.Observe(now, truth, near))
		}
		if i%10 == 5 {
			frame, err := session.Frame(now)
			if err != nil {
				log.Fatal(err)
			}
			frames++
			for _, a := range frame.Annotations {
				if a.XRay {
					xray++
				}
			}
			e := tracking.Register(frame.Pose, truth, 60, 1280)
			regErr.PositionM += e.PositionM
			regErr.HeadingDeg += e.HeadingDeg
		}
	}
	fmt.Printf("tour: %d frames over %ds\n", frames, steps/10)
	fmt.Printf("mean registration error: %.1f m position, %.1f° heading\n",
		regErr.PositionM/float64(frames), regErr.HeadingDeg/float64(frames))
	fmt.Printf("x-ray (see-through) annotations shown: %d\n", xray)

	// What did the backend actually learn about the tourist's route?
	suppressed := platform.Metrics().Counter("core.privacy.suppressed").Value()
	fmt.Printf("privacy: ε=0.02/fix, budget 50 — %d fixes suppressed after budget\n", suppressed)

	final, err := session.Frame(start.Add(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncurrent view:")
	for i, a := range final.Annotations {
		if i == 8 {
			break
		}
		marker := " "
		if a.XRay {
			marker = "▒" // drawn through a building
		}
		fmt.Printf("  %s %-24s %.0fm away\n", marker, a.Label, a.Pos.Depth)
	}
}
