// Public services (§3.4): a VANET on a city grid. The driver's AR display
// warns about predicted conflicts; cloud-shared beacons add the "x-ray
// vision" ability to see vehicles hidden behind buildings.
package main

import (
	"fmt"
	"time"

	"arbd/internal/sim"
	"arbd/internal/traffic"
)

func main() {
	s := traffic.NewSim(traffic.Config{
		Seed:        3,
		GridN:       6,
		BlockM:      120,
		NumVehicles: 50,
		Penetration: 0.8,
	}, sim.Epoch)

	const (
		radioRange = 250.0
		horizon    = 8 * time.Second
		minSep     = 12.0
	)
	var losDetected, sharedDetected, truthTotal int
	fmt.Println("simulating 60s of urban traffic (80% V2X penetration)...")
	for step := 0; step < 120; step++ {
		s.Step(500 * time.Millisecond)
		los := s.MeasureDetection(radioRange, false, horizon, minSep)
		shared := s.MeasureDetection(radioRange, true, horizon, minSep)
		losDetected += los.DetectedPairs
		sharedDetected += shared.DetectedPairs
		truthTotal += shared.TruthPairs
	}
	fmt.Printf("\nconflicts (oracle):            %d\n", truthTotal)
	fmt.Printf("warned, line-of-sight radios:  %d (recall %.0f%%)\n",
		losDetected, pct(losDetected, truthTotal))
	fmt.Printf("warned, cloud-shared beacons:  %d (recall %.0f%%)\n",
		sharedDetected, pct(sharedDetected, truthTotal))
	fmt.Printf("x-ray vision benefit:          +%.0f%% of conflicts seen through buildings\n",
		pct(sharedDetected-losDetected, truthTotal))

	// Show one driver's live AR warning panel.
	vehicles := s.Vehicles()
	inbox := s.ReceivedBeacons(radioRange, true)
	for _, v := range vehicles {
		if !v.Equipped {
			continue
		}
		warnings := traffic.WarningsFromBeacons(v, inbox[v.ID], horizon, minSep)
		if len(warnings) == 0 {
			continue
		}
		fmt.Printf("\ndriver %d heads-up display:\n", v.ID)
		for _, w := range warnings {
			fmt.Printf("  ⚠ vehicle %d — closest approach %.0f m in %v\n",
				w.B, w.MinSep, w.TTC.Round(100*time.Millisecond))
		}
		break
	}
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
