// Retail (§3.1): a shopper walks a mall district while the platform learns
// from purchases and gaze, then serves context-aware recommendations and
// semantically tagged overlays ("only 2 left", "sale").
package main

import (
	"fmt"
	"log"
	"time"

	"arbd"
	"arbd/internal/recommend"
	"arbd/internal/sensor"
)

func main() {
	center := arbd.Point{Lat: 22.2819, Lon: 114.1582} // Central, Hong Kong
	platform, err := arbd.New(arbd.Config{
		Seed: 7,
		City: arbd.CityConfig{Center: center, RadiusM: 1200, NumPOIs: 900},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Start(); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()

	// Train a recommender on a synthetic purchase log and wrap it with the
	// AR context re-ranker.
	w := recommend.GenerateShoppers(recommend.ShopperConfig{
		Seed: 7, NumUsers: 300, NumItems: 400, EventsPerUser: 25, Center: center,
	})
	cf := recommend.NewItemCF(w.Log)
	session := platform.NewSession()
	ctxAware := recommend.NewContextAware(cf, w.Catalog, func(uint64) recommend.Context {
		return recommend.Context{Location: session.Pose().Position}
	})
	platform.SetRecommender(ctxAware)

	// Walk for a minute of simulated time, gazing and buying.
	walker := arbd.NewWalker(arbd.WalkerConfig{Center: center, RadiusM: 400, Seed: 7})
	gps := sensor.NewGPS(7, 5)
	gaze := sensor.NewGaze(7)
	start := time.Now()
	for i := 0; i < 60; i++ {
		now := start.Add(time.Duration(i) * time.Second)
		truth := walker.Step(time.Second)
		if err := session.OnGPS(gps.Fix(now, truth.Position)); err != nil {
			log.Fatal(err)
		}
		frame, err := session.Frame(now)
		if err != nil {
			log.Fatal(err)
		}
		// The shopper's eyes wander over the overlay.
		if g := gaze.Sample(now, time.Second, session.GazeTargets()); g.TargetID != 0 {
			if err := session.OnGaze(g); err != nil {
				log.Fatal(err)
			}
		}
		// Occasionally they buy from the overlay.
		if i%20 == 10 && len(frame.Annotations) > 0 {
			if err := session.RecordInteraction(frame.Annotations[0].ID, 1.0); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := platform.WaitAnalyticsIdle(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	frame, err := session.Frame(start.Add(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 60s of shopping: %d annotations, %d recommendations\n",
		len(frame.Annotations), len(frame.Recommended))
	fmt.Println("\ntop in-view content:")
	for i, a := range frame.Annotations {
		if i == 8 {
			break
		}
		fmt.Printf("  %-30s\n", a.Label)
	}
	fmt.Println("\nrecommended next stops:")
	for _, id := range frame.Recommended {
		fmt.Printf("  item %d\n", id)
	}
	fmt.Println("\ntrending POIs across all shoppers:")
	for _, hh := range platform.HotPOIs(5) {
		fmt.Printf("  %-12s %d interactions\n", hh.Key, hh.Count)
	}
}
