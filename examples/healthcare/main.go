// Healthcare (§3.3): a ward of patients streams vitals; the alert engine
// fires on anomaly episodes and the clinician's AR view shows EHR context
// and live tags for the patient they are looking at.
package main

import (
	"fmt"
	"log"
	"time"

	"arbd/internal/arml"
	"arbd/internal/ehr"
	"arbd/internal/sensor"
	"arbd/internal/sim"
)

func main() {
	store := ehr.NewStore()
	engine := ehr.NewAlertEngine(store, ehr.StandardRules())
	vocab := arml.HealthVocabulary()

	// Admit a small ward.
	patients := []ehr.Patient{
		{ID: 1, Name: "K. Chan", Age: 67, Conditions: []string{"atrial fibrillation"}, Medications: []string{"warfarin"}},
		{ID: 2, Name: "M. Lau", Age: 45, Conditions: []string{"asthma"}, Allergies: []string{"aspirin"}},
		{ID: 3, Name: "S. Ng", Age: 72, Conditions: []string{"COPD"}, Medications: []string{"salbutamol"}},
	}
	for _, p := range patients {
		if err := store.PutPatient(p); err != nil {
			log.Fatal(err)
		}
	}

	// Patient 3 deteriorates 2 minutes in.
	sims := map[uint64]*sensor.Vitals{}
	for _, p := range patients {
		sims[p.ID] = sensor.NewVitals(int64(p.ID) * 101)
	}
	episodeAt := sim.Epoch.Add(2 * time.Minute)
	sims[3].StartEpisode(episodeAt, 3*time.Minute)

	fmt.Println("streaming vitals for 6 minutes at 1 Hz...")
	for sec := 0; sec < 360; sec++ {
		now := sim.Epoch.Add(time.Duration(sec) * time.Second)
		for pid, v := range sims {
			for _, samp := range v.Sample(now) {
				for _, alert := range engine.Ingest(pid, samp) {
					p, _ := store.GetPatient(pid)
					fmt.Printf("  [%s] ALERT %s: %s (%.0f) — lead %v after onset\n",
						alert.Time.Format("15:04:05"), p.Name, alert.Rule, alert.Value,
						alert.Time.Sub(episodeAt).Round(time.Second))
				}
			}
		}
	}

	// The clinician looks at patient 3: compose the AR overlay.
	p, err := store.GetPatient(3)
	if err != nil {
		log.Fatal(err)
	}
	metrics := store.OverlayMetrics(3)
	tags := vocab.Interpret(metrics)
	fmt.Printf("\nAR overlay for %s (age %d):\n", p.Name, p.Age)
	fmt.Printf("  conditions: %v  medications: %v\n", p.Conditions, p.Medications)
	fmt.Printf("  live vitals: HR %.0f  SpO2 %.0f%%  BP %.0f\n",
		metrics["heart_rate"], metrics["spo2"], metrics["systolic_bp"])
	for _, tag := range tags {
		fmt.Printf("  ⚠ %s: %s\n", tag.Key, tag.Value)
	}
	hist, err := store.VitalsWindow(3, sensor.VitalHeartRate, sim.Epoch, sim.Epoch.Add(time.Hour))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  heart-rate history: %d samples recorded\n", len(hist))
	fmt.Printf("\ntotal alerts fired: %d\n", len(engine.Alerts()))
}
