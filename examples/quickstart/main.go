// Quickstart: build a platform over a synthetic city, open a session, feed
// one GPS fix, and print the AR overlay for the first frame.
package main

import (
	"fmt"
	"log"
	"time"

	"arbd"
)

func main() {
	platform, err := arbd.New(arbd.Config{
		Seed: 42,
		City: arbd.CityConfig{
			Center:  arbd.Point{Lat: 22.3364, Lon: 114.2655}, // HKUST
			RadiusM: 2000,
			NumPOIs: 1500,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := platform.Stop(); err != nil {
			log.Printf("stop: %v", err)
		}
	}()

	session := platform.NewSession()
	now := time.Now()
	if err := session.OnGPS(arbd.GPSFix{
		Time:      now,
		Position:  arbd.Point{Lat: 22.3364, Lon: 114.2655},
		AccuracyM: 5,
	}); err != nil {
		log.Fatal(err)
	}

	frame, err := session.Frame(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pose: %s heading %.0f°\n", frame.Pose.Position, frame.Pose.HeadingDeg)
	fmt.Printf("overlay: %d annotations (level %v, %v)\n",
		len(frame.Annotations), frame.Level, frame.Elapsed.Round(time.Microsecond))
	for i, a := range frame.Annotations {
		style := ""
		if a.XRay {
			style = " [x-ray]"
		}
		fmt.Printf("  %2d. %-22s box=(%4.0f,%4.0f) depth=%.0fm%s\n",
			i+1, a.Label, a.X, a.Y, a.Pos.Depth, style)
	}

	armlDoc, err := frame.ToARML()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nARML export: %d bytes\n", len(armlDoc))
}
