// Streaming: the protocol-v2 session in one file. A standalone server
// comes up over loopback (in production this is `arbd-server`), a client
// dials it, negotiates v2 in the hello handshake, feeds one GPS fix, and
// subscribes — from then on the server owns the frame clock and pushes
// the overlay at the requested cadence; the client just drains a channel.
// Compare examples/quickstart, which polls the in-process API frame by
// frame.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arbd"
	"arbd/internal/server"
)

func main() {
	platform, err := arbd.New(arbd.Config{
		Seed: 42,
		City: arbd.CityConfig{
			Center:  arbd.Point{Lat: 22.3364, Lon: 114.2655}, // HKUST
			RadiusM: 2000,
			NumPOIs: 1500,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := platform.Stop(); err != nil {
			log.Printf("stop: %v", err)
		}
	}()

	srv := server.New(platform, log.Default())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Require v2 at dial time: against an old server this fails with a
	// typed *arbd.VersionError instead of a mid-session surprise.
	client, err := arbd.DialContext(context.Background(), addr,
		arbd.DialOptions{MinProto: arbd.ProtoV2})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("connected: protocol v%d, session %d\n", client.Proto(), client.SessionID())

	if err := client.SendGPS(arbd.GPSFix{
		Time:      time.Now(),
		Position:  arbd.Point{Lat: 22.3364, Lon: 114.2655},
		AccuracyM: 5,
	}); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	frames, err := client.Subscribe(ctx, arbd.SubscribeOptions{
		Interval: 100 * time.Millisecond, // 10 Hz
		Budget:   8,                      // drop-oldest bound if we fall behind
	})
	if err != nil {
		log.Fatal(err)
	}

	last := time.Time{}
	for f := range frames {
		gap := time.Duration(0)
		if !last.IsZero() {
			gap = time.Since(last).Round(time.Millisecond)
		}
		last = time.Now()
		fmt.Printf("push #%d: %d annotations (level %v, +%v)\n",
			f.Seq, len(f.Annotations), f.Level, gap)
		if f.Seq >= 5 {
			if err := client.Unsubscribe(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := client.StreamErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stream closed cleanly")
}
