module arbd

go 1.22
