// Package arbd is the public API of the AR⊕big-data convergence platform —
// a Go reproduction of "When Augmented Reality Meets Big Data" (Huang, Hui,
// Peylo). It re-exports the platform core and the domain types downstream
// applications need; the substrates live under internal/ (see DESIGN.md for
// the full inventory).
//
// Quickstart:
//
//	p, err := arbd.New(arbd.Config{
//		Seed: 1,
//		City: arbd.CityConfig{Center: arbd.Point{Lat: 22.3364, Lon: 114.2655}},
//	})
//	if err != nil { ... }
//	if err := p.Start(); err != nil { ... }
//	defer p.Stop()
//
//	s := p.NewSession()
//	_ = s.OnGPS(fix)              // feed device sensors
//	frame, err := s.Frame(now)    // get the AR overlay
package arbd

import (
	"context"

	"arbd/internal/core"
	"arbd/internal/geo"
	"arbd/internal/recommend"
	"arbd/internal/render"
	"arbd/internal/sensor"
	"arbd/internal/server"
	"arbd/internal/wire"
)

// Core platform types.
type (
	// Platform is the convergence system: substrates plus the analytics
	// plane.
	Platform = core.Platform
	// Config parameterises a Platform.
	Config = core.Config
	// Session is one device's connection.
	Session = core.Session
	// Frame is one rendered AR overlay.
	Frame = core.Frame
	// Stats summarises session health.
	Stats = core.Stats
	// DegradeLevel is the timeliness controller's state.
	DegradeLevel = core.DegradeLevel
)

// Degradation levels (timeliness controller, §4.1 of the paper).
const (
	DegradeNone   = core.DegradeNone
	DegradeRadius = core.DegradeRadius
	DegradeInterp = core.DegradeInterp
)

// Geospatial types.
type (
	// Point is a WGS84 coordinate.
	Point = geo.Point
	// CityConfig parameterises the synthetic city generator.
	CityConfig = geo.CityConfig
	// POI is a point of interest.
	POI = geo.POI
)

// Device sensor types.
type (
	// GPSFix is one positioning sample.
	GPSFix = sensor.GPSFix
	// IMUSample is one inertial sample.
	IMUSample = sensor.IMUSample
	// GazeSample is one eye-tracking sample.
	GazeSample = sensor.GazeSample
	// Pose is position plus orientation.
	Pose = sensor.Pose
	// LandmarkObservation is a recognised visual landmark.
	LandmarkObservation = sensor.LandmarkObservation
)

// Overlay types.
type (
	// Annotation is one placed overlay element.
	Annotation = render.Annotation
)

// Recommendation types.
type (
	// Recommender ranks items for a user.
	Recommender = recommend.Recommender
	// Interaction is one implicit-feedback event.
	Interaction = recommend.Interaction
)

// Network client types: the wire-protocol client for talking to an
// arbd-server (standalone or router) over TCP.
type (
	// Client is the concurrency-safe protocol client: seq-matched
	// request/reply plus server-pushed frame subscriptions (protocol v2).
	Client = server.Client
	// DialOptions tunes the protocol handshake.
	DialOptions = server.DialOptions
	// SubscribeOptions tunes a frame subscription (cadence, push budget).
	SubscribeOptions = server.SubscribeOptions
	// DecodedFrame is a frame received over the wire.
	DecodedFrame = core.DecodedFrame
	// VersionError is the typed protocol-handshake failure: the two sides
	// share no usable protocol version. Detect with errors.As.
	VersionError = wire.VersionError
)

// Wire protocol versions (see PROTOCOL.md). Pass ProtoV2 as
// DialOptions.MinProto to require streaming support at dial time.
const (
	ProtoV1 = wire.ProtoV1
	ProtoV2 = wire.ProtoV2
)

// Dial connects to an arbd server at the default options and runs the
// protocol handshake.
func Dial(addr string) (*Client, error) { return server.Dial(addr) }

// DialContext connects with explicit handshake options, the context
// bounding the dial and handshake.
func DialContext(ctx context.Context, addr string, opts DialOptions) (*Client, error) {
	return server.DialContext(ctx, addr, opts)
}

// New builds a platform over a generated synthetic city. Call Start to run
// the analytics plane and Stop to drain it.
func New(cfg Config) (*Platform, error) {
	return core.NewPlatform(cfg)
}

// NewWalker returns a deterministic pedestrian motion model for driving
// sessions in examples and load generators.
func NewWalker(cfg sensor.WalkerConfig) *sensor.Walker {
	return sensor.NewWalker(cfg)
}

// WalkerConfig parameterises NewWalker.
type WalkerConfig = sensor.WalkerConfig
